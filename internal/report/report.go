// Package report turns a pipeline execution's RunStats into a
// self-contained, serializable run report: the EXPLAIN side (which
// alternative sets Algorithm 1 considered, what the cost model charged
// them, and what won), the calibration side (predicted vs. measured
// matches and cost per executed pattern), and the execution side
// (per-level selectivity, per-worker skew). The same RunReport backs
// `morphcli explain`, the -report JSON flags, and morphbench's report
// artifacts.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"morphing/internal/canon"
	"morphing/internal/core"
	"morphing/internal/engine"
	"morphing/internal/obs"
	"morphing/internal/pattern"
)

// Schema identifies the report format; bump on incompatible changes.
const Schema = "morphing-run-report/v1"

// QueryReport is one input query and what transformation did to it.
type QueryReport struct {
	Pattern string `json:"pattern"`
	Name    string `json:"name,omitempty"`
	Morphed bool   `json:"morphed"`
}

// PatternReport is the calibration record for one executed alternative:
// the cost model's predictions next to the engine's measurements.
type PatternReport struct {
	Pattern          string  `json:"pattern"`
	Name             string  `json:"name,omitempty"`
	Variant          string  `json:"variant"`
	EstCost          float64 `json:"est_cost"`
	EstMatches       float64 `json:"est_matches"`
	Matches          uint64  `json:"matches"`
	TimeNS           int64   `json:"time_ns"`
	CalibrationRatio float64 `json:"calibration_ratio"`
}

// PartialReport is one alternative pattern's mined progress at the moment
// a run was interrupted: the same marked partial counts the CLI prints.
// Query-level results cannot be soundly converted from an incomplete
// mined set, so interrupted runs surface these raw per-alternative counts
// instead of query results.
type PartialReport struct {
	Pattern string `json:"pattern"`
	Name    string `json:"name,omitempty"`
	Count   uint64 `json:"count"`
}

// LevelReport is one exploration level's measured selectivity.
type LevelReport struct {
	Level       int     `json:"level"`
	Candidates  uint64  `json:"candidates"`
	Extended    uint64  `json:"extended"`
	Selectivity float64 `json:"selectivity"`
}

// TrieNodeReport is one merged-trie node's measured selectivity: where
// the one-pass executor's shared candidate computations paid off.
type TrieNodeReport struct {
	Node        int     `json:"node"`
	Depth       int     `json:"depth"`
	Patterns    int     `json:"patterns"`
	Enters      uint64  `json:"enters"`
	Candidates  uint64  `json:"candidates"`
	Extended    uint64  `json:"extended"`
	Selectivity float64 `json:"selectivity"`
}

// MiningReport summarizes the matching phase across all alternatives.
type MiningReport struct {
	Matches     uint64               `json:"matches"`
	SetOps      uint64               `json:"set_ops"`
	SetElems    uint64               `json:"set_elems"`
	TotalTimeNS int64                `json:"total_time_ns"`
	Levels      []LevelReport        `json:"levels,omitempty"`
	Workers     []engine.WorkerStats `json:"workers,omitempty"`
	// Skew is max worker busy time over the mean (1 = perfectly
	// balanced); 0 when no worker telemetry was recorded.
	Skew float64 `json:"skew,omitempty"`
	// TailSteals counts tail work-stealing block splits (idle workers
	// halving a straggler's remaining level-0 range).
	TailSteals uint64 `json:"tail_steals,omitempty"`
	// Trie execution telemetry, present when the run went through the
	// one-pass trie executor: plan levels the merged trie shared, and
	// per-trie-node selectivity.
	TrieSharedLevels uint64           `json:"trie_shared_levels,omitempty"`
	TrieNodes        []TrieNodeReport `json:"trie_nodes,omitempty"`
}

// StorageReport attributes storage-tier work to one run: how much the
// compressed tier decoded for this query, how the per-view probe-block
// cache fared, and how much of an mmap backing was page-cache resident
// at run end.
type StorageReport struct {
	DecodeRows   uint64 `json:"decode_rows"`
	DecodeBlocks uint64 `json:"decode_blocks"`
	DecodeElems  uint64 `json:"decode_elems"`
	// DecodeBytes is the expanded size of the decoded elements.
	DecodeBytes uint64 `json:"decode_bytes"`
	ProbeHits   uint64 `json:"probe_hits"`
	ProbeMisses uint64 `json:"probe_misses"`
	// Mmap residency (mincore sample at run end); present only when the
	// tier is mmap-backed on a platform that can sample.
	MappedBytes      uint64 `json:"mapped_bytes,omitempty"`
	ResidentBytes    uint64 `json:"resident_bytes,omitempty"`
	ResidencySampled bool   `json:"residency_sampled,omitempty"`
}

// RunReport is the full serializable record of one pipeline execution.
type RunReport struct {
	Schema        string `json:"schema"`
	Engine        string `json:"engine"`
	GraphVertices int    `json:"graph_vertices"`
	GraphEdges    uint64 `json:"graph_edges"`
	Phase         string `json:"phase"`

	// RunID and Label identify the execution's observability run scope:
	// every span, metric delta and query-log line the run emitted
	// carries RunID.
	RunID string `json:"run_id,omitempty"`
	Label string `json:"label,omitempty"`
	// FlightDump is the flight-recorder bundle directory when the run
	// ended anomalously and a dump was written.
	FlightDump string `json:"flight_dump,omitempty"`
	// QueryLog embeds the run's retained lifecycle events (the same
	// records the JSONL query log carries), oldest first.
	QueryLog []obs.Event `json:"query_log,omitempty"`

	Policy     string        `json:"policy,omitempty"`
	Queries    []QueryReport `json:"queries"`
	CostBefore float64       `json:"cost_before"`
	CostAfter  float64       `json:"cost_after"`

	TransformNS    int64  `json:"transform_ns"`
	ConvertNS      int64  `json:"convert_ns"`
	ConversionMode string `json:"conversion_mode,omitempty"`
	EstimatedBytes uint64 `json:"estimated_bytes,omitempty"`

	// Trie records the multi-pattern trie routing decision: whether the
	// winner set was mined in one shared-prefix pass, and why (or why not).
	Trie *core.TrieDecision `json:"trie,omitempty"`

	// Interrupted marks a run that ended on a typed interruption
	// (cancel, deadline, contained panic); Partial then carries the
	// per-alternative progress mined before the abort.
	Interrupted bool            `json:"interrupted,omitempty"`
	Partial     []PartialReport `json:"partial,omitempty"`

	// CalibrationRatio is the mean per-pattern calibration ratio
	// (predicted/measured matches, add-one smoothed); 0 when the run
	// carried no calibration records.
	CalibrationRatio float64 `json:"calibration_ratio,omitempty"`

	Mining   *MiningReport   `json:"mining,omitempty"`
	Patterns []PatternReport `json:"patterns,omitempty"`

	// Storage is the run's storage-tier attribution: decode work and
	// probe-block cache activity by this run only (not process-cumulative
	// totals), plus mmap page residency when the tier supports sampling.
	Storage *StorageReport `json:"storage,omitempty"`

	// Selection is the Algorithm 1 trace (explain mode only).
	Selection *core.SelectionExplain `json:"selection,omitempty"`

	// Registry optionally embeds a metrics snapshot taken after the run
	// (the -report flags attach the observer's registry here).
	Registry *obs.Snapshot `json:"registry,omitempty"`
}

// FromRunStats builds a RunReport from a completed (or interrupted)
// execution's RunStats. The report copies everything it needs, so it
// remains valid after the RunStats producer moves on.
func FromRunStats(st *core.RunStats) *RunReport {
	if st == nil {
		return nil
	}
	r := &RunReport{
		Schema:         Schema,
		Engine:         st.Engine,
		GraphVertices:  st.GraphVertices,
		GraphEdges:     st.GraphEdges,
		Phase:          st.Phase,
		RunID:          st.RunID,
		Label:          st.RunLabel,
		FlightDump:     st.FlightDump,
		TransformNS:    int64(st.Transform),
		ConvertNS:      int64(st.Convert),
		ConversionMode: st.ConversionMode,
		EstimatedBytes: st.EstimatedBytes,
	}
	r.QueryLog = append(r.QueryLog, st.Events...)
	if sel := st.Selection; sel != nil {
		r.Policy = sel.Policy.String()
		r.CostBefore = sel.CostBefore
		r.CostAfter = sel.CostAfter
		r.Selection = sel.Explain
		for _, q := range sel.Queries {
			r.Queries = append(r.Queries, QueryReport{
				Pattern: q.Pattern.String(),
				Name:    FriendlyName(q.Pattern),
				Morphed: q.Morphed,
			})
		}
	}
	for _, pc := range st.Partial {
		r.Partial = append(r.Partial, PartialReport{
			Pattern: pc.Pattern.String(),
			Name:    FriendlyName(pc.Pattern),
			Count:   pc.Count,
		})
	}
	r.Interrupted = st.Phase != "" && st.Phase != core.PhaseDone
	r.CalibrationRatio = st.MeanCalibrationRatio()
	for _, pp := range st.PerPattern {
		r.Patterns = append(r.Patterns, PatternReport{
			Pattern:          pp.Pattern,
			Name:             friendlyNameString(pp.Pattern),
			Variant:          pp.Variant,
			EstCost:          pp.EstCost,
			EstMatches:       pp.EstMatches,
			Matches:          pp.Matches,
			TimeNS:           int64(pp.Time),
			CalibrationRatio: pp.CalibrationRatio(),
		})
	}
	if td := st.Trie; td != nil {
		cp := *td
		r.Trie = &cp
	}
	if st.Decode != nil || st.Residency != nil {
		sr := &StorageReport{}
		if d := st.Decode; d != nil {
			sr.DecodeRows = d.Rows
			sr.DecodeBlocks = d.Blocks
			sr.DecodeElems = d.Elems
			sr.DecodeBytes = d.DecodedBytes()
			sr.ProbeHits = d.ProbeHits
			sr.ProbeMisses = d.ProbeMisses
		}
		if rs := st.Residency; rs != nil {
			sr.MappedBytes = rs.MappedBytes
			sr.ResidentBytes = rs.ResidentBytes
			sr.ResidencySampled = rs.Sampled
		}
		r.Storage = sr
	}
	if m := st.Mining; m != nil {
		mr := &MiningReport{
			Matches:     m.Matches,
			SetOps:      m.SetOps,
			SetElems:    m.SetElems,
			TotalTimeNS: int64(m.TotalTime),
			TailSteals:  m.TailSteals,
		}
		for i, l := range m.Levels {
			mr.Levels = append(mr.Levels, LevelReport{
				Level: i, Candidates: l.Candidates, Extended: l.Extended,
				Selectivity: l.Selectivity(),
			})
		}
		mr.Workers = append(mr.Workers, m.Workers...)
		sort.Slice(mr.Workers, func(i, j int) bool { return mr.Workers[i].Worker < mr.Workers[j].Worker })
		mr.Skew = workerSkew(mr.Workers)
		if m.TriePasses > 0 {
			mr.TrieSharedLevels = m.TrieSharedLevels
			for _, tn := range m.TrieNodes {
				mr.TrieNodes = append(mr.TrieNodes, TrieNodeReport{
					Node: tn.Node, Depth: tn.Depth, Patterns: tn.Patterns,
					Enters: tn.Enters, Candidates: tn.Candidates, Extended: tn.Extended,
					Selectivity: tn.Selectivity(),
				})
			}
			sort.Slice(mr.TrieNodes, func(i, j int) bool { return mr.TrieNodes[i].Node < mr.TrieNodes[j].Node })
		}
		r.Mining = mr
	}
	return r
}

// workerSkew returns max busy time over mean busy time (0 without data).
func workerSkew(ws []engine.WorkerStats) float64 {
	if len(ws) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, w := range ws {
		sum += w.Time
		if w.Time > max {
			max = w.Time
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(ws))
	return float64(max) / mean
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report for humans: the EXPLAIN view of the plan
// (queries, winner, and — when the trace is present — the scored
// candidate alternative sets, rejected ones included), followed by
// calibration and execution telemetry. Lines carrying wall-clock are
// emitted only when timings are nonzero, so golden tests can normalize
// them away.
func (r *RunReport) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("== run report (%s) ==\n", r.Schema)
	if r.RunID != "" {
		p("run: %s", r.RunID)
		if r.Label != "" {
			p("  label: %s", r.Label)
		}
		p("\n")
	}
	p("engine: %s  graph: %d vertices, %d edges  phase: %s\n",
		r.Engine, r.GraphVertices, r.GraphEdges, r.Phase)
	if r.FlightDump != "" {
		p("flight dump: %s\n", r.FlightDump)
	}
	if r.Policy != "" {
		p("policy: %s\n", r.Policy)
	}
	p("\n-- queries --\n")
	for _, q := range r.Queries {
		how := "mined as-is"
		if q.Morphed {
			how = "morphed"
		}
		p("  %-28s %s (%s)\n", nameOr(q.Name, ""), q.Pattern, how)
	}
	p("modeled cost: %.6g -> %.6g", r.CostBefore, r.CostAfter)
	if r.CostBefore > 0 {
		p("  (x%.3g)", r.CostBefore/r.CostAfter)
	}
	p("\n")

	if r.Selection != nil {
		p("\n-- alternative sets considered (Algorithm 1) --\n")
		for _, cm := range r.Selection.Candidates {
			verdict := "rejected"
			if cm.Accepted {
				verdict = "ACCEPTED"
			}
			p("  [%s] parent %s: replace cost %.6g with cost %.6g\n",
				verdict, cm.Parent, cm.CostOut, cm.CostIn)
			for _, s := range cm.Removed {
				p("    - %s %s (cost %.6g)\n", s.Pattern, s.Variant, s.Cost)
			}
			for _, s := range cm.Added {
				if s.Free {
					p("    + %s %s (already scheduled: free)\n", s.Pattern, s.Variant)
				} else {
					p("    + %s %s (cost %.6g)\n", s.Pattern, s.Variant, s.Cost)
				}
			}
		}
		if r.Selection.Truncated > 0 {
			p("  ... %d more rejected candidates truncated\n", r.Selection.Truncated)
		}
	}

	if td := r.Trie; td != nil {
		route := "per pattern"
		if td.Used {
			route = "one pass (shared-prefix trie)"
		}
		p("\n-- multi-pattern execution --\n")
		p("  trie mode %s: %s\n", td.Mode, route)
		p("    %s\n", td.Reason)
	}

	if r.Interrupted {
		p("\n*** RUN INTERRUPTED — results below are PARTIAL (stopped in phase %q) ***\n", r.Phase)
		for _, pc := range r.Partial {
			p("  %-28s %s  %12d  [partial, mined alternative]\n",
				nameOr(pc.Name, ""), pc.Pattern, pc.Count)
		}
	}

	if len(r.Patterns) > 0 {
		p("\n-- mined patterns (winner set) + calibration --\n")
		for _, pr := range r.Patterns {
			p("  %-28s %s [%s]\n", nameOr(pr.Name, ""), pr.Pattern, pr.Variant)
			p("    est cost %.6g, est matches %.6g; measured matches %d (ratio %.3g)\n",
				pr.EstCost, pr.EstMatches, pr.Matches, pr.CalibrationRatio)
			if pr.TimeNS > 0 {
				p("    time %v\n", time.Duration(pr.TimeNS))
			}
		}
	}

	if m := r.Mining; m != nil {
		p("\n-- execution --\n")
		p("  matches: %d  set ops: %d (%d elems scanned)\n", m.Matches, m.SetOps, m.SetElems)
		if len(m.Levels) > 0 {
			p("  per-level selectivity:\n")
			for _, l := range m.Levels {
				p("    level %d: %d candidates -> %d extended (%.4g)\n",
					l.Level, l.Candidates, l.Extended, l.Selectivity)
			}
		}
		if len(m.TrieNodes) > 0 {
			p("  per-trie-node selectivity (%d plan levels shared):\n", m.TrieSharedLevels)
			for _, tn := range m.TrieNodes {
				p("    node %d depth %d [%d pattern(s)]: %d enters, %d candidates -> %d extended (%.4g)\n",
					tn.Node, tn.Depth, tn.Patterns, tn.Enters, tn.Candidates, tn.Extended, tn.Selectivity)
			}
		}
		if m.TailSteals > 0 {
			p("  tail steals: %d\n", m.TailSteals)
		}
		if len(m.Workers) > 0 {
			p("  workers: %d", len(m.Workers))
			if m.Skew > 0 {
				p("  skew (max/mean busy): %.3g", m.Skew)
			}
			p("\n")
			for _, ws := range m.Workers {
				if ws.Time > 0 {
					p("    worker %d: %v busy, %d matches\n", ws.Worker, ws.Time, ws.Matches)
				} else {
					p("    worker %d: %d matches\n", ws.Worker, ws.Matches)
				}
			}
		}
		if m.TotalTimeNS > 0 {
			p("  mining wall-clock (summed over workers' executions): %v\n", time.Duration(m.TotalTimeNS))
		}
	}
	if s := r.Storage; s != nil {
		p("\n-- storage --\n")
		p("  decoded: %d rows, %d blocks, %d elems (%d bytes expanded)\n",
			s.DecodeRows, s.DecodeBlocks, s.DecodeElems, s.DecodeBytes)
		if probes := s.ProbeHits + s.ProbeMisses; probes > 0 {
			p("  probe-block cache: %d hits / %d probes (%.1f%%)\n",
				s.ProbeHits, probes, 100*float64(s.ProbeHits)/float64(probes))
		}
		if s.ResidencySampled {
			pct := 0.0
			if s.MappedBytes > 0 {
				pct = 100 * float64(s.ResidentBytes) / float64(s.MappedBytes)
			}
			p("  mmap residency: %d of %d bytes resident (%.1f%%)\n",
				s.ResidentBytes, s.MappedBytes, pct)
		}
	}
	if r.ConversionMode != "" {
		p("\nconversion: %s", r.ConversionMode)
		if r.EstimatedBytes > 0 {
			p(" (estimated match bytes: %d)", r.EstimatedBytes)
		}
		p("\n")
	}
	if r.TransformNS > 0 || r.ConvertNS > 0 {
		p("transform: %v  convert: %v\n", time.Duration(r.TransformNS), time.Duration(r.ConvertNS))
	}
	return err
}

func nameOr(name, fallback string) string {
	if name != "" {
		return name
	}
	return fallback
}

// namedIndex maps structure IDs of the paper's named patterns to their
// figure names, built once on first use.
var (
	namedIndex map[uint64]string
	namedOnce  sync.Once
)

func namedByID() map[uint64]string {
	namedOnce.Do(func() {
		idx := map[uint64]string{}
		add := func(ns []pattern.Named) {
			for _, n := range ns {
				id := canon.StructureID(n.Pattern)
				if _, dup := idx[id]; !dup {
					idx[id] = n.Name
				}
			}
		}
		add(pattern.Fig1Patterns())
		add(pattern.Fig11Patterns())
		namedIndex = idx
	})
	return namedIndex
}

// FriendlyName returns the paper's figure name for p's structure
// ("triangle", "4-cycle", ...) or "" when the structure is not one of
// the named patterns. Labeled patterns are never named (the figures'
// patterns are unlabeled).
func FriendlyName(p *pattern.Pattern) string {
	if p == nil || p.Labeled() {
		return ""
	}
	return namedByID()[canon.StructureID(p)]
}

// friendlyNameString is FriendlyName over the textual pattern format.
func friendlyNameString(s string) string {
	p, err := pattern.Parse(s)
	if err != nil {
		return ""
	}
	return FriendlyName(p)
}
