package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"morphing/internal/core"
	"morphing/internal/graph"
	"morphing/internal/obs"
	"morphing/internal/pattern"
	"morphing/internal/peregrine"
)

// chordRing builds the deterministic test graph shared by these tests: a
// cycle plus stride-2 chords, dense in triangles and 4-cycles.
func chordRing(n int) *graph.Graph {
	var edges [][2]uint32
	for i := 0; i < n; i++ {
		edges = append(edges, [2]uint32{uint32(i), uint32((i + 1) % n)})
		edges = append(edges, [2]uint32{uint32(i), uint32((i + 2) % n)})
	}
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		panic(err)
	}
	return g
}

func explainedRun(t *testing.T, threads int) *core.RunStats {
	t.Helper()
	g := chordRing(256)
	r := &core.Runner{Engine: peregrine.New(threads), Explain: true}
	queries := []*pattern.Pattern{
		pattern.Triangle(),
		pattern.FourCycle().AsVertexInduced(),
	}
	_, st, err := r.Counts(g, queries)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFromRunStats(t *testing.T) {
	st := explainedRun(t, 2)
	rep := FromRunStats(st)

	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
	if rep.Engine != "Peregrine" || rep.GraphVertices != 256 || rep.GraphEdges == 0 {
		t.Errorf("run identity: %q %d %d", rep.Engine, rep.GraphVertices, rep.GraphEdges)
	}
	if len(rep.Queries) != 2 {
		t.Fatalf("%d queries", len(rep.Queries))
	}
	if rep.Queries[0].Name != "triangle" || rep.Queries[1].Name != "4-cycle" {
		t.Errorf("friendly names: %q, %q", rep.Queries[0].Name, rep.Queries[1].Name)
	}
	if len(rep.Patterns) != len(st.Selection.Mine) {
		t.Fatalf("%d pattern reports, want %d", len(rep.Patterns), len(st.Selection.Mine))
	}
	for _, pr := range rep.Patterns {
		if pr.CalibrationRatio <= 0 || math.IsInf(pr.CalibrationRatio, 0) || math.IsNaN(pr.CalibrationRatio) {
			t.Errorf("pattern %s: calibration ratio %v not finite-positive", pr.Pattern, pr.CalibrationRatio)
		}
		if pr.EstCost <= 0 {
			t.Errorf("pattern %s: no cost estimate", pr.Pattern)
		}
	}
	if rep.Mining == nil {
		t.Fatal("no mining report")
	}
	if len(rep.Mining.Levels) == 0 {
		t.Error("no per-level selectivity")
	}
	for _, l := range rep.Mining.Levels {
		if l.Extended > l.Candidates {
			t.Errorf("level %d: extended %d > candidates %d", l.Level, l.Extended, l.Candidates)
		}
	}
	if len(rep.Mining.Workers) == 0 {
		t.Error("no worker telemetry")
	}
	if rep.Selection == nil || len(rep.Selection.NodeCosts) == 0 {
		t.Error("no selection trace")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep := FromRunStats(explainedRun(t, 1))
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Schema != Schema || len(back.Patterns) != len(rep.Patterns) {
		t.Errorf("round trip lost data: %q, %d patterns", back.Schema, len(back.Patterns))
	}
	for _, pr := range back.Patterns {
		if pr.Matches == 0 && pr.EstMatches == 0 {
			t.Errorf("pattern %s: neither predicted nor measured matches survived", pr.Pattern)
		}
	}
}

func TestWriteTextShowsRejectedAlternatives(t *testing.T) {
	rep := FromRunStats(explainedRun(t, 2))
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"-- queries --",
		"triangle",
		"Algorithm 1",
		"[rejected]",
		"est cost",
		"measured matches",
		"per-level selectivity",
		"workers:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain text missing %q:\n%s", want, text)
		}
	}
}

// TestReportConcurrentWorkers exercises the report path under -race:
// several explained pipelines run concurrently on multi-worker engines
// while one Recorder captures them all.
func TestReportConcurrentWorkers(t *testing.T) {
	rec := NewRecorder(0)
	rec.Install()
	defer rec.Close()

	g := chordRing(512)
	const runs = 4
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &core.Runner{Engine: peregrine.New(4), Explain: true, Obs: &obs.Observer{Metrics: obs.NewRegistry()}}
			_, _, errs[i] = r.Counts(g, []*pattern.Pattern{pattern.Triangle()})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	reports := rec.Reports()
	if len(reports) != runs {
		t.Fatalf("recorded %d reports, want %d", len(reports), runs)
	}
	for _, rep := range reports {
		if len(rep.Mining.Workers) != 4 {
			t.Errorf("report has %d worker entries, want 4", len(rep.Mining.Workers))
		}
		if rep.Mining.Matches == 0 {
			t.Error("report lost its match count")
		}
	}
}

func TestRecorderCap(t *testing.T) {
	rec := NewRecorder(1)
	rec.Install()
	defer rec.Close()
	g := chordRing(64)
	r := &core.Runner{Engine: peregrine.New(1)}
	for i := 0; i < 3; i++ {
		if _, _, err := r.Counts(g, []*pattern.Pattern{pattern.Triangle()}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(rec.Reports()); got != 1 {
		t.Errorf("kept %d reports, want 1", got)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped %d, want 2", rec.Dropped())
	}
}

func TestFriendlyName(t *testing.T) {
	cases := []struct {
		p    *pattern.Pattern
		want string
	}{
		{pattern.Triangle(), "triangle"},
		{pattern.FourClique(), "4-clique"},
		{pattern.FourCycle().AsVertexInduced(), "4-cycle"}, // variant-insensitive
		{pattern.Path(6), ""},                              // unnamed structure
	}
	for _, c := range cases {
		if got := FriendlyName(c.p); got != c.want {
			t.Errorf("FriendlyName(%v) = %q, want %q", c.p, got, c.want)
		}
	}
}

// TestInterruptedRunSurvivesReport pins the server-path contract: an
// interrupted run's Phase, per-alternative partial counts, and the
// calibration ratio must survive the RunStats -> RunReport conversion
// (they are what morphd attaches to deadline/cancel errors).
func TestInterruptedRunSurvivesReport(t *testing.T) {
	st := &core.RunStats{
		Engine:        "Peregrine",
		GraphVertices: 256,
		GraphEdges:    512,
		Phase:         core.PhaseMine,
		Partial: []core.PartialCount{
			{Pattern: pattern.Triangle(), Count: 42},
			{Pattern: pattern.FourCycle().AsVertexInduced(), Count: 7},
		},
	}
	rep := FromRunStats(st)
	if !rep.Interrupted {
		t.Fatal("Phase=mine must mark the report interrupted")
	}
	if rep.Phase != core.PhaseMine {
		t.Errorf("phase %q", rep.Phase)
	}
	if len(rep.Partial) != 2 {
		t.Fatalf("%d partial rows, want 2 (RunStats.Partial dropped)", len(rep.Partial))
	}
	if rep.Partial[0].Count != 42 || rep.Partial[1].Count != 7 {
		t.Errorf("partial counts %d,%d", rep.Partial[0].Count, rep.Partial[1].Count)
	}
	if rep.Partial[0].Name != "triangle" {
		t.Errorf("partial rows lost friendly names: %q", rep.Partial[0].Name)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "PARTIAL") || !strings.Contains(out, "42") {
		t.Errorf("text report hides the interruption:\n%s", out)
	}

	// The full pipeline round trip: JSON keeps the interruption.
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !back.Interrupted || len(back.Partial) != 2 {
		t.Errorf("JSON round trip: interrupted=%v partial=%d", back.Interrupted, len(back.Partial))
	}
}

// TestCompletedRunNotInterrupted guards the other direction: a finished
// explain run must not be marked interrupted, and its mean calibration
// ratio must survive into the report.
func TestCompletedRunNotInterrupted(t *testing.T) {
	st := explainedRun(t, 1)
	rep := FromRunStats(st)
	if rep.Interrupted || len(rep.Partial) != 0 {
		t.Errorf("completed run reported interrupted=%v partial=%d", rep.Interrupted, len(rep.Partial))
	}
	if rep.Phase != core.PhaseDone {
		t.Errorf("phase %q, want done", rep.Phase)
	}
	if rep.CalibrationRatio <= 0 {
		t.Errorf("calibration ratio %v did not survive the report path", rep.CalibrationRatio)
	}
}
