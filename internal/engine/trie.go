package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"morphing/internal/faultinject"
	"morphing/internal/graph"
	"morphing/internal/obs"
	"morphing/internal/pattern"
	"morphing/internal/plan"
	"morphing/internal/setops"
)

// Trie-driven multi-pattern execution: the generic counterpart of
// AutoZero's merged schedule interpreter, operating on a plan.Trie built
// by plan.MergePlans from any engine's plans. One pass over the data
// graph enumerates each shared partial embedding once and fans out into
// the per-pattern subtrees, accumulating a count per leaf pattern. The
// executor reuses the backtracking executor's machinery wholesale: the
// adaptive set-operation entry points (hub-aware intersections,
// count-only childless leaves), the atomic block cursor with tail
// stealing, cooperative cancellation, and worker panic containment.

// Planner is implemented by engines whose execution is driven by
// exploration plans, exposing enough for the trie path to mine a whole
// winner set with the engine's own matching orders: the plan the engine
// would use for a pattern, and the executor configuration it would run
// it with. All four engine models implement it.
type Planner interface {
	Engine
	// PlanPattern builds the exploration plan the engine would execute
	// for p on g (g matters to engines that pick orders by cost model).
	PlanPattern(g graph.Adjacency, p *pattern.Pattern) (*plan.Plan, error)
	// ExecConfig returns the engine's executor options and observer.
	ExecConfig() (ExecOptions, *obs.Observer)
}

// BuildTrie merges the engine's plans for ps into a prefix trie, without
// executing anything — callers inspect the trie's sharing statistics to
// decide between one-pass and per-pattern execution.
func BuildTrie(e Planner, g graph.Adjacency, ps []*pattern.Pattern) (*plan.Trie, error) {
	plans := make([]*plan.Plan, len(ps))
	for i, p := range ps {
		pl, err := e.PlanPattern(g, p)
		if err != nil {
			return nil, fmt.Errorf("engine: trie plan for pattern %d: %w", i, err)
		}
		plans[i] = pl
	}
	return plan.MergePlans(plans)
}

// BacktrackTrie mines every pattern of the merged trie in one pass,
// returning one count per plan (in tr.Plans order). Counting only — the
// trie path exists for CountAll-style workloads; streaming visitors and
// MatchLimit stay on the per-pattern executor.
func BacktrackTrie(g graph.Adjacency, tr *plan.Trie, opts ExecOptions, o *obs.Observer) ([]uint64, *Stats, error) {
	return BacktrackTrieCtx(context.Background(), g, tr, opts, o)
}

// BacktrackTrieCtx is BacktrackTrie with cooperative cancellation and
// panic isolation, under the same partial-result contract as BacktrackCtx:
// an interrupted pass returns partial counts for every pattern
// simultaneously, each reflecting the vertex blocks completed before the
// abort took effect.
func BacktrackTrieCtx(ctx context.Context, g graph.Adjacency, tr *plan.Trie, opts ExecOptions, o *obs.Observer) ([]uint64, *Stats, error) {
	if tr == nil || len(tr.Plans) == 0 {
		return nil, nil, fmt.Errorf("engine: nil or empty plan trie")
	}
	if err := CtxErr(ctx); err != nil {
		return make([]uint64, len(tr.Plans)), nil, err
	}
	fi := faultinject.Active()
	ctx, fiStop := fi.Context(ctx)
	defer fiStop()
	start := time.Now()
	// Run scope on the context wins over the caller's explicit observer
	// (see BacktrackCtx).
	o = obs.FromContext(ctx, o)
	defer o.StartSpan("mine/trie",
		obs.Int("patterns", len(tr.Plans)),
		obs.Int("shared_levels", tr.SharedLevels)).End()
	liveMatches := o.Counter(MetricMatches)

	threads := opts.ThreadCount()
	n := g.NumVertices()
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = 256
		if n/threads < blockSize*8 {
			blockSize = n/(threads*8) + 1
		}
	}
	numBlocks := (n + blockSize - 1) / blockSize
	maxDeg := g.MaxDegree()

	var cursor int64
	var wg sync.WaitGroup
	done := ctx.Done()
	var abort atomic.Bool
	var panicOnce sync.Once
	var panicErr *PanicError
	workers := make([]*trieWorker, threads)
	ranges := make([]*vertexRange, threads)
	info := buildTrieExecInfo(tr)
	for t := 0; t < threads; t++ {
		workers[t] = getTrieWorker(t, g, tr, info, opts.Instrument, maxDeg, opts.NoArena)
		ranges[t] = &workers[t].rng
	}
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(w *trieWorker) {
			defer wg.Done()
			t0 := time.Now()
			defer func() { w.busy = time.Since(t0) }()
			defer func() {
				if r := recover(); r != nil {
					pe := &PanicError{Worker: w.id, Value: r, Stack: debug.Stack()}
					panicOnce.Do(func() { panicErr = pe })
					abort.Store(true)
				}
			}()
			for {
				if abort.Load() {
					return
				}
				select {
				case <-done:
					abort.Store(true)
					return
				default:
				}
				b := int(atomic.AddInt64(&cursor, 1)) - 1
				if b >= numBlocks {
					break
				}
				lo := uint32(b * blockSize)
				hi := uint32((b + 1) * blockSize)
				if hi > uint32(n) {
					hi = uint32(n)
				}
				w.rng.reset(lo, hi, !opts.NoTailSteal)
				// After reset: a stall-injected straggler holds an armed,
				// stealable range, the scenario tail stealing exists for.
				fi.BlockClaimed(w.id)
				before := w.total()
				w.runRoot()
				liveMatches.Add(w.id, w.total()-before)
				fi.MatchesCounted(w.id, w.total()-before)
			}
			for !opts.NoTailSteal {
				if abort.Load() {
					return
				}
				select {
				case <-done:
					abort.Store(true)
					return
				default:
				}
				lo, hi, ok := stealFrom(ranges, w.id)
				if !ok {
					return
				}
				w.steals++
				w.rng.reset(lo, hi, false)
				before := w.total()
				w.runRoot()
				liveMatches.Add(w.id, w.total()-before)
				fi.MatchesCounted(w.id, w.total()-before)
			}
		}(workers[t])
	}
	wg.Wait()

	counts := make([]uint64, len(tr.Plans))
	st := &Stats{
		TriePasses:       1,
		TriePatterns:     uint64(len(tr.Plans)),
		TrieSharedLevels: uint64(tr.SharedLevels),
	}
	for _, w := range workers {
		for i, c := range w.counts {
			counts[i] += c
		}
		w.st.TailSteals += w.steals
		w.st.AddSetops(w.sst)
		for i, l := range w.levels {
			w.st.AddLevel(i, l.Candidates, l.Extended)
		}
		// Stats.Add copies entries by value, so the worker-owned backing
		// array is safe to lend here and reuse on the next execution.
		w.wstats[0] = WorkerStats{Worker: w.id, Time: w.busy, Matches: w.total()}
		w.st.Workers = w.wstats[:]
		st.Add(&w.st)
	}
	tr.Walk(func(node *plan.TrieNode) {
		agg := TrieNodeStats{Node: node.ID, Depth: node.Depth, Patterns: node.Patterns}
		for _, w := range workers {
			agg.Enters += w.nodeEnters[node.ID]
			agg.Candidates += w.nodeCands[node.ID]
			agg.Extended += w.nodeExt[node.ID]
		}
		st.AddTrieNode(agg)
	})
	for _, w := range workers {
		w.release()
	}
	for _, c := range counts {
		st.Matches += c
	}
	st.TotalTime = time.Since(start)
	PublishStats(o, st)
	if panicErr != nil {
		PublishAbort(o, panicErr)
		return counts, st, panicErr
	}
	if err := CtxErr(ctx); err != nil && abort.Load() {
		PublishAbort(o, err)
		return counts, st, err
	}
	return counts, st, nil
}

// trieExecInfo is per-node execution metadata derived from the trie's
// static structure: whether the node's candidate set can be computed
// incrementally from its parent's materialized raw set. When the parent's
// Connect and Disconnect lists are subsets of the child's, the child's
// set is the parent's raw set (pre-window, pre-label — exactly the
// intersection the parent materialized) narrowed by the extra
// constraints only. On the dense alternative sets morphing produces this
// collapses a leaf's whole intersection chain into one count-only kernel
// call against an already-small set — the dominant cost of a pass.
type trieExecInfo struct {
	reuse     bool
	extraConn []int
	extraDisc []int
}

// buildTrieExecInfo walks the trie once, marking every node whose
// constraint lists extend its parent's. Roots and children of
// constraint-free parents (no materialized set to extend) stay on the
// from-scratch path.
func buildTrieExecInfo(tr *plan.Trie) []trieExecInfo {
	info := make([]trieExecInfo, tr.Nodes)
	var rec func(n *plan.TrieNode)
	rec = func(n *plan.TrieNode) {
		for _, b := range n.Branches {
			for _, c := range b.Children {
				if len(n.Connect) > 0 {
					if okC, exC := subsetExtra(n.Connect, c.Connect); okC {
						if okD, exD := subsetExtra(n.Disconnect, c.Disconnect); okD {
							info[c.ID] = trieExecInfo{reuse: true, extraConn: exC, extraDisc: exD}
						}
					}
				}
				rec(c)
			}
		}
	}
	for _, r := range tr.Roots {
		rec(r)
	}
	return info
}

// subsetExtra reports whether every element of parent appears in child,
// and if so returns the child elements not in parent. The lists are tiny
// (bounded by pattern size), so quadratic scans beat any indexing.
func subsetExtra(parent, child []int) (bool, []int) {
	containsInt := func(s []int, x int) bool {
		for _, v := range s {
			if v == x {
				return true
			}
		}
		return false
	}
	for _, j := range parent {
		if !containsInt(child, j) {
			return false, nil
		}
	}
	var extra []int
	for _, j := range child {
		if !containsInt(parent, j) {
			extra = append(extra, j)
		}
	}
	return true, extra
}

// trieWorker interprets the merged trie over one stealable vertex range
// at a time. Besides the per-depth selectivity every executor records, it
// keeps per-trie-node counters (dense node-ID indexed) so the run report
// can show where sharing paid off.
type trieWorker struct {
	id         int
	g          graph.Adjacency // per-worker view (see graph.Adjacency)
	volatile   bool            // rows are scratch-backed; see candidates
	tr         *plan.Trie
	info       []trieExecInfo
	instrument bool

	st     Stats
	sst    setops.Stats
	levels []LevelStats
	busy   time.Duration
	steals uint64
	rng    vertexRange

	counts     []uint64 // per-plan match counts
	nodeEnters []uint64 // per-node: partial embeddings reaching the node
	nodeCands  []uint64 // per-node: candidates its shared computation produced
	nodeExt    []uint64 // per-node: candidates surviving its filters

	match []uint32
	bufA  [][]uint32
	bufB  [][]uint32
	raw   [][]uint32 // per-depth: last raw (pre-window) candidate set, for child reuse
	wins  [][]trieWin
	connV []uint32
	discV []uint32

	// Pooling state, mirroring btWorker: a pooled worker keeps its arena
	// and the scratch carved from it, so reuse at the same shape allocates
	// nothing; wstats backs st.Workers across executions.
	arena  *setops.Arena // nil under NoArena
	d      int           // trie depth the scratch is shaped for
	maxDeg int           // buffer capacity the scratch is shaped for
	wstats [1]WorkerStats
}

// trieWin is one branch's resolved symmetry window, half-open [lo, hi).
type trieWin struct {
	lo, hi uint32
}

func (w *trieWorker) total() uint64 {
	var t uint64
	for _, c := range w.counts {
		t += c
	}
	return t
}

// trieWorkerPool recycles trie workers (and their arenas) across passes,
// mirroring btWorkerPool.
var trieWorkerPool = sync.Pool{New: func() any { return new(trieWorker) }}

// getTrieWorker returns a worker shaped for the trie, pooled unless
// noArena.
func getTrieWorker(id int, g graph.Adjacency, tr *plan.Trie, info []trieExecInfo, instrument bool, maxDeg int, noArena bool) *trieWorker {
	var w *trieWorker
	if noArena {
		w = new(trieWorker)
	} else {
		w = trieWorkerPool.Get().(*trieWorker)
		if w.arena == nil {
			w.arena = setops.GetArena()
		}
	}
	d := tr.MaxDepth
	if w.d != d || w.maxDeg < maxDeg || len(w.counts) != len(tr.Plans) || len(w.nodeEnters) != tr.Nodes {
		w.reshape(d, maxDeg, len(tr.Plans), tr.Nodes)
	}
	w.id = id
	w.g = g.View()
	w.volatile = g.VolatileRows()
	w.tr = tr
	w.info = info
	w.instrument = instrument
	clear(w.levels)
	clear(w.counts)
	clear(w.nodeEnters)
	clear(w.nodeCands)
	clear(w.nodeExt)
	lv, wk, tn := w.st.Levels[:0], w.st.Workers[:0], w.st.TrieNodes[:0]
	w.st = Stats{}
	w.st.Levels, w.st.Workers, w.st.TrieNodes = lv, wk, tn
	w.sst = setops.Stats{Scratch: w.arena}
	w.busy = 0
	w.steals = 0
	w.rng.reset(0, 0, false) // neutralize any stale armed range
	return w
}

// reshape (re)builds the worker's scratch for a new trie shape, carving
// every uint32 buffer from the arena when one is attached (after a Reset,
// since the previous shape's buffers alias the same slabs).
func (w *trieWorker) reshape(d, maxDeg, plans, nodes int) {
	w.d, w.maxDeg = d, maxDeg
	if w.arena != nil {
		w.arena.Reset()
	}
	alloc := func(n int) []uint32 {
		if w.arena != nil {
			return w.arena.Alloc(n)
		}
		return make([]uint32, 0, n)
	}
	w.levels = make([]LevelStats, d)
	w.counts = make([]uint64, plans)
	w.nodeEnters = make([]uint64, nodes)
	w.nodeCands = make([]uint64, nodes)
	w.nodeExt = make([]uint64, nodes)
	w.match = alloc(d)[:d]
	w.bufA = make([][]uint32, d)
	w.bufB = make([][]uint32, d)
	w.raw = make([][]uint32, d)
	w.wins = make([][]trieWin, d)
	w.connV = alloc(d)
	w.discV = alloc(d)
	for i := 0; i < d; i++ {
		w.bufA[i] = alloc(maxDeg)
		w.bufB[i] = alloc(maxDeg)
	}
}

// release returns a pooled worker to the pool, dropping per-pass
// references; NoArena workers are dropped for the GC.
func (w *trieWorker) release() {
	if w.arena == nil {
		return
	}
	w.g = nil
	w.tr = nil
	w.info = nil
	trieWorkerPool.Put(w)
}

// runRoot scans the worker's armed level-0 range, claiming vertices one
// at a time (see steal.go) and pushing each through every root node.
func (w *trieWorker) runRoot() {
	for {
		v, ok := w.rng.next()
		if !ok {
			return
		}
		for _, root := range w.tr.Roots {
			w.levels[0].Candidates++
			w.nodeEnters[root.ID]++
			w.nodeCands[root.ID]++
			if root.Label != pattern.Unlabeled && w.g.Label(v) != root.Label {
				continue
			}
			w.levels[0].Extended++
			w.nodeExt[root.ID]++
			w.match[0] = v
			// Depth-0 nodes carry no symmetry conditions (no earlier levels).
			for _, br := range root.Branches {
				for _, idx := range br.Leaves {
					w.counts[idx]++
				}
				for _, child := range br.Children {
					w.exec(child, 1)
				}
			}
		}
	}
}

// exec runs one shared node at the given depth: compute the candidate set
// once, then per surviving candidate evaluate each symmetry branch,
// crediting leaf patterns and recursing into children. Nodes whose
// branches are all childless degenerate into pure counting.
func (w *trieWorker) exec(node *plan.TrieNode, depth int) {
	leaf := true
	for _, br := range node.Branches {
		if len(br.Children) > 0 {
			leaf = false
			break
		}
	}
	if leaf {
		w.execLeaf(node, depth)
		return
	}
	w.nodeEnters[node.ID]++
	cands := w.candidates(node, depth)
	// Children may derive their sets from this raw (pre-window) set; it
	// stays valid through the subtree recursion because deeper levels own
	// their own scratch buffers.
	w.raw[depth] = cands

	// Per-branch symmetry windows depend only on the bound prefix:
	// resolve them once per node execution (into per-depth scratch — this
	// runs once per partial embedding, so it must not allocate) and clip
	// the shared candidate set to their union, so candidates no branch can
	// accept are never scanned. With a single branch — plans agreeing on
	// the level's conditions — this is exactly the per-pattern executor's
	// symmetry pruning; diverging branches keep whatever pruning their
	// windows' union allows.
	wins := w.wins[depth][:0]
	ulo, uhi := ^uint32(0), uint32(0)
	for _, br := range node.Branches {
		lo, hi := trieWindow(br, w.match)
		wins = append(wins, trieWin{lo, hi})
		if lo < ulo {
			ulo = lo
		}
		if hi > uhi {
			uhi = hi
		}
	}
	w.wins[depth] = wins
	if ulo > 0 || uhi < ^uint32(0) {
		cands = setops.Clip(cands, ulo, uhi)
	}

	w.levels[depth].Candidates += uint64(len(cands))
	w.nodeCands[node.ID] += uint64(len(cands))
	var ext uint64
	for _, v := range cands {
		if node.Label != pattern.Unlabeled && w.g.Label(v) != node.Label {
			continue
		}
		used := false
		for j := 0; j < depth; j++ {
			if w.match[j] == v {
				used = true
				break
			}
		}
		if used {
			continue
		}
		ext++
		w.match[depth] = v
		for bi, br := range node.Branches {
			if v < wins[bi].lo || v >= wins[bi].hi {
				continue
			}
			for _, idx := range br.Leaves {
				w.counts[idx]++
			}
			for _, child := range br.Children {
				w.exec(child, depth+1)
			}
		}
	}
	w.levels[depth].Extended += ext
	w.nodeExt[node.ID] += ext
}

// execLeaf runs a node whose branches are all childless. Nothing
// downstream needs the bindings, so counting goes through the count-only
// kernels: a single branch never materializes the candidate set
// (CountExtensions), while sibling branches materialize the shared set
// once and count each branch's window arithmetically.
func (w *trieWorker) execLeaf(node *plan.TrieNode, depth int) {
	bound := w.match[:depth]
	w.nodeEnters[node.ID]++
	if len(node.Branches) == 1 {
		br := node.Branches[0]
		var t0 time.Time
		if w.instrument {
			t0 = time.Now()
		}
		lo, hi := trieWindow(br, w.match)
		if f, ok := LevelFilter(w.g, lo, hi, node.Label); ok {
			var n uint64
			if ei := &w.info[node.ID]; ei.reuse {
				n = w.countFromParent(node, ei, depth, f)
			} else {
				cv := w.connV[:0]
				for _, j := range node.Connect {
					cv = append(cv, w.match[j])
				}
				dv := w.discV[:0]
				for _, j := range node.Disconnect {
					dv = append(dv, w.match[j])
				}
				w.connV, w.discV = cv, dv
				n, w.bufA[depth], w.bufB[depth] = CountExtensions(w.g, cv, dv, f, bound, w.bufA[depth], w.bufB[depth], &w.sst)
			}
			for _, idx := range br.Leaves {
				w.counts[idx] += n
			}
			// Count-only leaf: the candidate set is never materialized, so
			// the extension count stands in for both fields.
			w.levels[depth].Candidates += n
			w.levels[depth].Extended += n
			w.nodeCands[node.ID] += n
			w.nodeExt[node.ID] += n
		}
		if w.instrument {
			w.st.SetOpTime += time.Since(t0)
		}
		return
	}
	cands := w.candidates(node, depth)
	// Clip the shared set to the union of the branch windows before the
	// per-branch count-only scans (same pruning as exec; membership within
	// any branch window is preserved, so the bound-vertex subtraction
	// below still sees every vertex its filter can pass).
	ulo, uhi := ^uint32(0), uint32(0)
	for _, br := range node.Branches {
		lo, hi := trieWindow(br, w.match)
		if lo < ulo {
			ulo = lo
		}
		if hi > uhi {
			uhi = hi
		}
	}
	if ulo > 0 || uhi < ^uint32(0) {
		cands = setops.Clip(cands, ulo, uhi)
	}
	w.levels[depth].Candidates += uint64(len(cands))
	w.nodeCands[node.ID] += uint64(len(cands))
	var t0 time.Time
	if w.instrument {
		t0 = time.Now()
	}
	for _, br := range node.Branches {
		lo, hi := trieWindow(br, w.match)
		f, ok := LevelFilter(w.g, lo, hi, node.Label)
		if !ok {
			continue
		}
		// The shared set is sorted, so each branch's window count is two
		// binary searches; only labeled levels still scan (and only the
		// window's slice of the set).
		sub := setops.Clip(cands, lo, hi)
		n := uint64(len(sub))
		if f.Labels != nil {
			n = setops.CountF(sub, f, &w.sst)
		}
		for _, u := range bound {
			if f.Pass(u) && setops.Contains(sub, u) {
				n--
			}
		}
		for _, idx := range br.Leaves {
			w.counts[idx] += n
		}
		// Sibling branches count overlapping windows of the shared set, so
		// Extended measures work done, not distinct bindings.
		w.levels[depth].Extended += n
		w.nodeExt[node.ID] += n
	}
	if w.instrument {
		w.st.SetOpTime += time.Since(t0)
	}
}

// countFromParent counts a reuse leaf's extensions from the parent's raw
// candidate set: materialize every extra constraint but the last, run the
// last count-only with the window and label fused in (mirroring
// CountExtensions), then subtract already-bound vertices — a bound vertex
// was counted iff it passes the filter, sits in the parent set, and
// satisfies the extra constraints, all O(log) probes.
func (w *trieWorker) countFromParent(node *plan.TrieNode, ei *trieExecInfo, depth int, f setops.Filter) uint64 {
	base := w.raw[depth-1]
	var n uint64
	nExtra := len(ei.extraConn) + len(ei.extraDisc)
	if nExtra == 0 {
		n = setops.CountF(base, f, &w.sst)
	} else {
		cur := base
		out, spare := w.bufA[depth], w.bufB[depth]
		for i, j := range ei.extraConn {
			u := w.match[j]
			if len(ei.extraDisc) == 0 && i == len(ei.extraConn)-1 {
				if bits := w.g.HubBits(u); bits != nil {
					n = setops.IntersectBitsCountF(cur, bits, f, &w.sst)
				} else {
					n = setops.IntersectCountF(cur, w.g.Neighbors(u), f, &w.sst)
				}
				break
			}
			cur = IntersectNeighbors(w.g, out, cur, u, &w.sst)
			out, spare = spare, cur
		}
		for i, j := range ei.extraDisc {
			u := w.match[j]
			if i == len(ei.extraDisc)-1 {
				if bits := w.g.HubBits(u); bits != nil {
					n = setops.DifferenceBitsCountF(cur, bits, f, &w.sst)
				} else {
					n = setops.DifferenceCountF(cur, w.g.Neighbors(u), f, &w.sst)
				}
				break
			}
			cur = DifferenceNeighbors(w.g, out, cur, u, &w.sst)
			out, spare = spare, cur
		}
		w.bufA[depth], w.bufB[depth] = out, spare
	}
	for _, u := range w.match[:depth] {
		if !f.Pass(u) || !setops.Contains(base, u) {
			continue
		}
		ok := true
		for _, j := range ei.extraConn {
			if !w.g.HasEdge(u, w.match[j]) {
				ok = false
				break
			}
		}
		if ok {
			for _, j := range ei.extraDisc {
				if w.g.HasEdge(u, w.match[j]) {
					ok = false
					break
				}
			}
		}
		if ok {
			n--
		}
	}
	return n
}

// trieWindow resolves a branch's symmetry conditions against the bound
// prefix as a half-open window [lo, hi).
func trieWindow(br *plan.TrieBranch, match []uint32) (lo, hi uint32) {
	lo, hi = 0, ^uint32(0)
	for _, j := range br.Greater {
		if match[j]+1 > lo {
			lo = match[j] + 1
		}
	}
	for _, j := range br.Smaller {
		if match[j] < hi {
			hi = match[j]
		}
	}
	return lo, hi
}

// candidates computes a node's shared candidate set from its Connect and
// Disconnect levels through the adaptive kernels. Nodes whose constraints
// extend their parent's narrow the parent's raw set by the extra
// constraints only, instead of rebuilding the intersection chain from
// adjacency lists. The returned slice is scratch owned by the worker.
func (w *trieWorker) candidates(node *plan.TrieNode, depth int) []uint32 {
	var t0 time.Time
	if w.instrument {
		t0 = time.Now()
	}
	if ei := &w.info[node.ID]; ei.reuse {
		cur := w.raw[depth-1]
		out, spare := w.bufA[depth], w.bufB[depth]
		for _, j := range ei.extraConn {
			cur = IntersectNeighbors(w.g, out, cur, w.match[j], &w.sst)
			out, spare = spare, cur
		}
		for _, j := range ei.extraDisc {
			cur = DifferenceNeighbors(w.g, out, cur, w.match[j], &w.sst)
			out, spare = spare, cur
		}
		w.bufA[depth], w.bufB[depth] = out, spare
		if w.instrument {
			w.st.SetOpTime += time.Since(t0)
		}
		return cur
	}
	base := node.Connect[0]
	for _, j := range node.Connect[1:] {
		if w.g.Degree(w.match[j]) < w.g.Degree(w.match[base]) {
			base = j
		}
	}
	cur := w.g.Neighbors(w.match[base])
	out, spare := w.bufA[depth], w.bufB[depth]
	for _, j := range node.Connect {
		if j == base {
			continue
		}
		cur = IntersectNeighbors(w.g, out, cur, w.match[j], &w.sst)
		out, spare = spare, cur
	}
	for _, j := range node.Disconnect {
		cur = DifferenceNeighbors(w.g, out, cur, w.match[j], &w.sst)
		out, spare = spare, cur
	}
	if w.volatile && len(node.Connect) == 1 && len(node.Disconnect) == 0 {
		// No set operation ran, so cur is still the raw decoded row — but
		// callers retain it through the whole subtree recursion (exec
		// stores it in w.raw[depth]), far beyond the view's row lifetime.
		// Pin it into the worker's per-depth scratch.
		cur = append(out[:0], cur...)
		out, spare = spare, cur
	}
	w.bufA[depth], w.bufB[depth] = out, spare
	if w.instrument {
		w.st.SetOpTime += time.Since(t0)
	}
	return cur
}
