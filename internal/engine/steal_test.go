package engine

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"morphing/internal/faultinject"
	"morphing/internal/graph"
	"morphing/internal/pattern"
	"morphing/internal/plan"
)

func TestVertexRangeClaim(t *testing.T) {
	var r vertexRange
	r.reset(3, 7, true)
	for want := uint32(3); want < 7; want++ {
		v, ok := r.next()
		if !ok || v != want {
			t.Fatalf("next() = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := r.next(); ok {
		t.Fatal("exhausted range still yields vertices")
	}
}

func TestVertexRangeStealHalf(t *testing.T) {
	var r vertexRange
	r.reset(0, 100, true)
	for i := 0; i < 10; i++ {
		r.next()
	}
	lo, hi, ok := r.stealHalf()
	if !ok {
		t.Fatal("splittable range with 90 vertices left refused a steal")
	}
	if lo != 55 || hi != 100 {
		t.Fatalf("stole [%d,%d), want [55,100)", lo, hi)
	}
	if rem := r.remaining(); rem != 45 {
		t.Fatalf("victim has %d left, want 45", rem)
	}
	// The once-per-block bound: a second steal on the same armed range
	// must fail even though plenty of work remains.
	if _, _, ok := r.stealHalf(); ok {
		t.Fatal("second steal on the same block succeeded")
	}
	// Claims continue seamlessly up to the reduced bound.
	n := 0
	for {
		if _, ok := r.next(); !ok {
			break
		}
		n++
	}
	if n != 45 {
		t.Fatalf("victim claimed %d more vertices, want 45", n)
	}
}

func TestVertexRangeStealRespectsMinimum(t *testing.T) {
	var r vertexRange
	r.reset(0, minStealRange-1, true)
	if _, _, ok := r.stealHalf(); ok {
		t.Fatal("stole from a range below minStealRange")
	}
	var nr vertexRange
	nr.reset(0, 100, false)
	if _, _, ok := nr.stealHalf(); ok {
		t.Fatal("stole from a non-splittable range")
	}
}

// skewedGraph packs nearly all mining work into the lowest-index
// vertices: a dense head cluster followed by a long sparse ring. The
// head lands in one level-0 block, making that block's owner the
// straggler tail stealing exists for.
func skewedGraph(t *testing.T, head, tail int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var edges [][2]uint32
	for u := 0; u < head; u++ {
		for v := u + 1; v < head; v++ {
			if rng.Float64() < 0.5 {
				edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			}
		}
	}
	n := head + tail
	for i := 0; i < tail; i++ {
		u := uint32(head + i)
		v := uint32(head + (i+1)%tail)
		if u != v {
			edges = append(edges, [2]uint32{u, v})
		}
	}
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTailStealingOnSkewedGraph is the satellite's acceptance check: on a
// graph whose work is concentrated in one block, idle workers split the
// straggler's remaining range (TailSteals > 0) and the per-worker match
// concentration drops, while the count never changes. Whether a steal
// lands in any single run depends on the scheduler (on a one-core
// machine the straggler may finish unpreempted), so the steal/skew
// assertions accept the first of several attempts; count equality must
// hold on every attempt.
func TestTailStealingOnSkewedGraph(t *testing.T) {
	g := skewedGraph(t, 120, 4000)
	pl, err := plan.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	run := func(noSteal bool) (uint64, *Stats) {
		c, st, err := Backtrack(g, pl, nil, ExecOptions{Threads: 4, NoTailSteal: noSteal}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c, st
	}
	share := func(st *Stats) float64 {
		var max, sum uint64
		for _, w := range st.Workers {
			sum += w.Matches
			if w.Matches > max {
				max = w.Matches
			}
		}
		if sum == 0 {
			return 0
		}
		return float64(max) / float64(sum)
	}
	baseCount, baseStats := run(true)
	if baseStats.TailSteals != 0 {
		t.Fatalf("NoTailSteal run recorded %d steals", baseStats.TailSteals)
	}
	ok := false
	for attempt := 0; attempt < 10 && !ok; attempt++ {
		stealCount, stealStats := run(false)
		if stealCount != baseCount {
			t.Fatalf("stealing changed the count: %d vs %d", stealCount, baseCount)
		}
		ok = stealStats.TailSteals > 0 && share(stealStats) < share(baseStats)
	}
	if !ok {
		t.Error("no attempt both stole a tail and reduced the max worker match share")
	}
}

// TestTrieTailStealing mirrors the skew check on the trie executor, which
// shares the same stealable ranges (same scheduler caveat, so the steal
// assertion retries; count equality must hold every time).
func TestTrieTailStealing(t *testing.T) {
	// Heavier head than the per-pattern test: the trie executor's
	// prefix-reuse makes it a few times faster on the dense cluster, so
	// the straggler needs more work for a steal window to open at all.
	g := skewedGraph(t, 240, 4000)
	pl1, err := plan.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := plan.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := plan.MergePlans([]*plan.Plan{pl1, pl2})
	if err != nil {
		t.Fatal(err)
	}
	off, stOff, err := BacktrackTrie(g, tr, ExecOptions{Threads: 4, NoTailSteal: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stOff.TailSteals != 0 {
		t.Errorf("NoTailSteal trie run recorded %d steals", stOff.TailSteals)
	}
	stole := false
	for attempt := 0; attempt < 10 && !stole; attempt++ {
		counts, st, err := BacktrackTrie(g, tr, ExecOptions{Threads: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if counts[i] != off[i] {
				t.Fatalf("pattern %d: stealing changed trie count %d -> %d", i, off[i], counts[i])
			}
		}
		stole = st.TailSteals > 0
	}
	if !stole {
		t.Error("no trie pass recorded a tail steal on the skewed graph")
	}
}

// TestTailStealRelievesStalledWorker pins the straggler scenario
// deterministically: fault injection stalls one worker right after it
// arms a block, so its siblings reliably drain the cursor, go idle, and
// must split the sleeper's untouched range.
//
// On a single-P runtime the scheduler can run one worker to completion
// before worker 0 ever claims a block (so nothing stalls and nothing is
// stealable); pin GOMAXPROCS to the worker count so every worker gets a
// thread and the stall actually creates a straggler.
func TestTailStealRelievesStalledWorker(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	disarm, err := faultinject.Arm(faultinject.Config{StallWorker: 0, StallFor: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	// The mining must outlive worker 0's thread startup by a wide margin,
	// or the siblings drain the cursor before worker 0 claims (and stalls
	// on) anything; the dense head provides tens of milliseconds of work.
	g := skewedGraph(t, 120, 4000)
	pl, err := plan.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Backtrack(g, pl, nil, ExecOptions{Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stole := false
	for attempt := 0; attempt < 5 && !stole; attempt++ {
		got, st, err := Backtrack(g, pl, nil, ExecOptions{Threads: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("stall+steal run counted %d, want %d", got, want)
		}
		stole = st.TailSteals > 0
	}
	if !stole {
		t.Error("siblings never stole from a worker stalled on an armed block")
	}
}
