// Package engine defines the contract shared by the four matching engines
// (Peregrine, AutoZero, GraphPi, BigJoin models) plus the instrumented
// statistics the paper's evaluation reports, and a parallel backtracking
// executor that pattern-aware engines build on.
package engine

import (
	"errors"
	"time"

	"morphing/internal/graph"
	"morphing/internal/pattern"
	"morphing/internal/setops"
)

// ErrInducedUnsupported is returned by engines asked to natively match
// semantics they do not support (vertex-induced patterns on the GraphPi
// and BigJoin models). Callers fall back to a Filter UDF or to Subgraph
// Morphing.
var ErrInducedUnsupported = errors.New("engine: induced semantics not supported natively; use a Filter UDF or Subgraph Morphing")

// Visitor receives one match per call: m[i] is the data vertex bound to
// pattern vertex i. Matches are unique per subgraph (symmetry breaking
// selects one embedding per automorphism class). Visitors may be invoked
// concurrently from different workers; worker identifies the caller and
// should be treated as a sharding hint (take it modulo your shard count —
// pipeline engines may use more worker IDs than configured threads). The
// slice is reused after the call returns — copy it to retain it.
type Visitor func(worker int, m []uint32)

// Engine is a pattern matching engine. Implementations differ in matching
// strategy, multi-pattern handling and which induced semantics they
// support natively — the very differences Subgraph Morphing exploits
// (§3.4).
type Engine interface {
	// Name returns the short system name used in figures.
	Name() string
	// SupportsInduced reports whether the engine natively matches
	// patterns with the given semantics. Engines without native
	// vertex-induced support (GraphPi and BigJoin models) need Filter
	// UDFs or Subgraph Morphing for those queries.
	SupportsInduced(iv pattern.Induced) bool
	// Count returns the number of unique matches of p in g.
	Count(g graph.Adjacency, p *pattern.Pattern) (uint64, *Stats, error)
	// CountAll counts several patterns, letting engines share work across
	// them (AutoZero merges schedules).
	CountAll(g graph.Adjacency, ps []*pattern.Pattern) ([]uint64, *Stats, error)
	// Match streams every unique match of p to visit.
	Match(g graph.Adjacency, p *pattern.Pattern, visit Visitor) (*Stats, error)
}

// Stats instruments one engine execution. The counters mirror the
// quantities the paper's profiling (Fig. 4) and evaluation figures report:
// set-operation work, match materialization, UDF invocations, and the
// data-dependent branches that Filter UDFs burn (Fig. 14c-d). Timings are
// only collected when instrumentation is enabled; counters are always on.
//
// Concurrency contract (the single-merger invariant): a Stats value has
// no internal synchronization. Although visitors may be invoked
// concurrently, each executor worker accumulates into its own private
// Stats, and exactly one goroutine merges them with Add after the workers
// have joined. Callers must follow the same discipline: never call Add on
// a Stats that another goroutine may still be writing, and never share
// one *Stats between concurrent executions. To keep a snapshot that
// outlives (or is decoupled from) the producer, use Clone instead of
// aliasing the returned pointer. For counters that must be readable while
// workers are still running (progress, /metrics), engines publish into
// the sharded cells of an obs.Registry instead.
type Stats struct {
	SetOps         uint64 // sorted-set operations executed
	SetElems       uint64 // elements scanned by set operations
	SetMergeOps    uint64 // operations served by the two-pointer merge path
	SetGallopOps   uint64 // operations served by the galloping path
	SetBitsetOps   uint64 // operations served by hub-bitset probes
	SetCountOps    uint64 // count-only operations (no destination writes)
	SetUnrolledOps uint64 // operations served by the branchless unrolled merge
	SetTileOps     uint64 // operations served by the block-bitmap tile kernel
	SetWritten     uint64 // elements written to destination slices
	Materialized uint64 // vertices written into emitted matches
	UDFCalls     uint64 // user-defined-function invocations
	Branches     uint64 // data-dependent branches (edge probes, filters)
	Matches      uint64 // unique matches found
	TailSteals   uint64 // tail work-stealing block splits performed

	// Trie-execution counters (BacktrackTrie): how many one-pass
	// multi-pattern executions ran, how many patterns they covered, and
	// how many plan levels merging shared (candidate computations saved
	// relative to per-pattern passes).
	TriePasses       uint64
	TriePatterns     uint64
	TrieSharedLevels uint64

	SetOpTime       time.Duration // candidate-generation time
	MaterializeTime time.Duration // match assembly and emission time
	UDFTime         time.Duration // time inside user callbacks
	TotalTime       time.Duration // wall-clock for the whole operation

	// Levels holds per-exploration-level selectivity counters, indexed by
	// plan level (0 = root). The ratio Extended/Candidates at each level
	// is the measured selectivity the §5.2 cost model predicts via
	// candidate-set sizes; comparing the two per level is how calibration
	// localizes mispredictions. Count-only last levels record their
	// extension count in both fields (the candidate set is never
	// materialized, so the scan width is unknown by design).
	Levels []LevelStats
	// Workers holds each worker's busy time and match yield for the
	// execution, the raw material for load-skew and straggler analysis.
	// Merged executions (Add) accumulate entries by worker ID.
	Workers []WorkerStats

	// TrieNodes holds per-trie-node selectivity for trie-driven
	// executions (BacktrackTrie), keyed by the merged trie's dense node
	// IDs. Merging (Add) accumulates by node ID, which is only meaningful
	// across executions of the same merged trie.
	TrieNodes []TrieNodeStats
}

// LevelStats instruments one exploration level: how many candidate
// vertices the level considered and how many survived its filters
// (symmetry window, label, already-bound) to be bound or counted.
type LevelStats struct {
	Candidates uint64 // candidate vertices considered at this level
	Extended   uint64 // candidates bound (or counted) at this level
}

// Selectivity returns Extended/Candidates, the level's measured
// survival fraction (0 when nothing was considered).
func (l LevelStats) Selectivity() float64 {
	if l.Candidates == 0 {
		return 0
	}
	return float64(l.Extended) / float64(l.Candidates)
}

// TrieNodeStats instruments one node of a merged plan trie: how many
// partial embeddings reached it (Enters), how many candidate vertices its
// shared computation produced, and how many survived its filters. A node
// with a high Patterns fan-in (see plan.TrieNode) and high Enters is
// where one-pass execution amortizes the most work.
type TrieNodeStats struct {
	Node       int    `json:"node"`
	Depth      int    `json:"depth"`
	Patterns   int    `json:"patterns"`
	Enters     uint64 `json:"enters"`
	Candidates uint64 `json:"candidates"`
	Extended   uint64 `json:"extended"`
}

// Selectivity returns Extended/Candidates for the node (0 when nothing
// was considered).
func (t TrieNodeStats) Selectivity() float64 {
	if t.Candidates == 0 {
		return 0
	}
	return float64(t.Extended) / float64(t.Candidates)
}

// WorkerStats is one worker's contribution to an execution: its busy
// wall-clock inside the work loop and the matches it found. A worker
// whose Time far exceeds its siblings' is a straggler (typically stuck
// under a hub vertex after the shared block cursor ran out).
type WorkerStats struct {
	Worker  int           `json:"worker"`
	Time    time.Duration `json:"time_ns"`
	Matches uint64        `json:"matches"`
}

// Clone returns an independent copy of s, for callers that want to
// retain a snapshot without aliasing a struct the producer may keep
// reusing (see the single-merger invariant above).
func (s *Stats) Clone() *Stats {
	if s == nil {
		return nil
	}
	cp := *s
	cp.Levels = append([]LevelStats(nil), s.Levels...)
	cp.Workers = append([]WorkerStats(nil), s.Workers...)
	cp.TrieNodes = append([]TrieNodeStats(nil), s.TrieNodes...)
	return &cp
}

// Add merges other into s. It is not safe to call while any worker may
// still be writing to either side; merge only after execution completes,
// from a single goroutine.
func (s *Stats) Add(other *Stats) {
	s.SetOps += other.SetOps
	s.SetElems += other.SetElems
	s.SetMergeOps += other.SetMergeOps
	s.SetGallopOps += other.SetGallopOps
	s.SetBitsetOps += other.SetBitsetOps
	s.SetCountOps += other.SetCountOps
	s.SetUnrolledOps += other.SetUnrolledOps
	s.SetTileOps += other.SetTileOps
	s.SetWritten += other.SetWritten
	s.Materialized += other.Materialized
	s.UDFCalls += other.UDFCalls
	s.Branches += other.Branches
	s.Matches += other.Matches
	s.TailSteals += other.TailSteals
	s.TriePasses += other.TriePasses
	s.TriePatterns += other.TriePatterns
	s.TrieSharedLevels += other.TrieSharedLevels
	s.SetOpTime += other.SetOpTime
	s.MaterializeTime += other.MaterializeTime
	s.UDFTime += other.UDFTime
	s.TotalTime += other.TotalTime
	for i, l := range other.Levels {
		s.AddLevel(i, l.Candidates, l.Extended)
	}
	for _, w := range other.Workers {
		s.AddWorker(w)
	}
	for _, t := range other.TrieNodes {
		s.AddTrieNode(t)
	}
}

// AddTrieNode accumulates one trie node's selectivity counters, merging
// by node ID (meaningful only across executions of the same merged trie).
func (s *Stats) AddTrieNode(t TrieNodeStats) {
	for i := range s.TrieNodes {
		if s.TrieNodes[i].Node == t.Node {
			s.TrieNodes[i].Enters += t.Enters
			s.TrieNodes[i].Candidates += t.Candidates
			s.TrieNodes[i].Extended += t.Extended
			return
		}
	}
	s.TrieNodes = append(s.TrieNodes, t)
}

// AddLevel accumulates level-i selectivity counters, growing Levels as
// needed. Workers call it once per execution from their private Stats;
// the merge side inherits it through Add.
func (s *Stats) AddLevel(i int, candidates, extended uint64) {
	for len(s.Levels) <= i {
		s.Levels = append(s.Levels, LevelStats{})
	}
	s.Levels[i].Candidates += candidates
	s.Levels[i].Extended += extended
}

// AddWorker accumulates one worker's contribution, merging by worker ID
// so repeated executions (CountAll loops) sum each worker's totals.
func (s *Stats) AddWorker(w WorkerStats) {
	for i := range s.Workers {
		if s.Workers[i].Worker == w.Worker {
			s.Workers[i].Time += w.Time
			s.Workers[i].Matches += w.Matches
			return
		}
	}
	s.Workers = append(s.Workers, w)
}

// AddSetops folds a worker's kernel-level counters (setops.Stats) into s.
// Like Add, it must only run after the producing worker has stopped.
func (s *Stats) AddSetops(o setops.Stats) {
	s.SetOps += o.Ops
	s.SetElems += o.Elems
	s.SetMergeOps += o.MergeOps
	s.SetGallopOps += o.GallopOps
	s.SetBitsetOps += o.BitsetOps
	s.SetCountOps += o.CountOps
	s.SetUnrolledOps += o.UnrolledOps
	s.SetTileOps += o.TileOps
	s.SetWritten += o.Written
}
