package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"morphing/internal/faultinject"
	"morphing/internal/graph"
	"morphing/internal/obs"
	"morphing/internal/pattern"
	"morphing/internal/plan"
	"morphing/internal/setops"
)

// ExecOptions configures the backtracking executor.
type ExecOptions struct {
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// Instrument enables phase timings (Fig. 4 style breakdowns) at the
	// cost of timer calls around candidate generation and UDFs.
	Instrument bool
	// BlockSize is the number of initial vertices per work unit; 0 picks
	// a default balancing scheduling overhead against skew.
	BlockSize int
	// MatchLimit stops exploration once at least this many matches have
	// been found (0 = unlimited). The final count may slightly exceed the
	// limit (workers drain their current root vertex). This implements
	// Peregrine-style early termination for existence-style queries.
	MatchLimit uint64
	// NoTailSteal disables the tail work-stealing pass that splits the
	// heaviest in-flight block once the block cursor runs dry (see
	// steal.go). On by default; the switch exists for A/B skew
	// measurements and debugging.
	NoTailSteal bool
	// NoArena disables the pooled per-worker slab arenas that back the
	// executor's prefix-set scratch (and the setops tile kernels), making
	// every execution allocate fresh worker scratch from the GC heap. On
	// by default; the switch exists for A/B allocation measurements
	// (morphbench kernels reports both trajectories) and debugging.
	NoArena bool
}

// ThreadCount resolves the effective worker count (GOMAXPROCS when
// Threads is zero).
func (o ExecOptions) ThreadCount() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// Backtrack explores all unique matches of the plan's pattern in g using
// pattern-aware backtracking: per level, candidates are the intersection
// of the adjacency lists of earlier matched neighbors, minus the adjacency
// lists of anti-neighbors, clipped by symmetry-breaking bounds. When visit
// is nil only the count is produced, enabling the last-level counting fast
// path (no materialization). The root level is parallelized over vertex
// blocks.
//
// o is the observability sink: counters land in its registry (workers
// flush per block, so hot loops stay on private fields). nil falls back
// to obs.Default(). The observer travels as its own argument rather than
// an ExecOptions field on purpose: keeping ExecOptions pointer-free keeps
// its GC shape trivial, which measurably matters to the executor's inner
// loops (adding a pointer field cost ~6% on motif counting).
func Backtrack(g graph.Adjacency, pl *plan.Plan, visit Visitor, opts ExecOptions, o *obs.Observer) (uint64, *Stats, error) {
	return BacktrackCtx(context.Background(), g, pl, visit, opts, o)
}

// BacktrackCtx is Backtrack with cooperative cancellation and panic
// isolation. Like the observer, the context rides alongside ExecOptions
// rather than inside it, keeping the options struct pointer-free (its GC
// shape measurably matters — see Backtrack).
//
// Cancellation is checked when a worker claims a work block, never in
// the inner matching loops: a cancel or deadline takes effect within one
// block's worth of work and returns the partial count plus ErrCanceled /
// ErrDeadlineExceeded (see the partial-result contract in ctx.go). A
// panic thrown by the visitor is recovered in the owning worker, aborts
// the sibling workers at their next block claim, and is surfaced as a
// single *PanicError carrying the stack — the process never crashes.
func BacktrackCtx(ctx context.Context, g graph.Adjacency, pl *plan.Plan, visit Visitor, opts ExecOptions, o *obs.Observer) (uint64, *Stats, error) {
	if pl == nil || pl.Pattern == nil {
		return 0, nil, fmt.Errorf("engine: nil plan")
	}
	if err := CtxErr(ctx); err != nil {
		return 0, nil, err
	}
	fi := faultinject.Active()
	ctx, fiStop := fi.Context(ctx)
	defer fiStop()
	visit = fi.Visitor(visit)
	start := time.Now()
	threads := opts.ThreadCount()
	n := g.NumVertices()
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = 256
		if n/threads < blockSize*8 {
			blockSize = n/(threads*8) + 1
		}
	}
	numBlocks := (n + blockSize - 1) / blockSize

	// A run scope on the context (obs.ContextWithRun) wins over the
	// caller's explicit observer: metrics and spans land in the current
	// query's scope and forward into the global registry from there.
	o = obs.FromContext(ctx, o)
	// Workers keep counters on private fields inside hot loops and flush
	// match deltas to this sharded cell at block granularity, so live
	// readers (progress, /metrics) see movement without slowing matching.
	liveMatches := o.Counter(MetricMatches)

	maxDeg := g.MaxDegree()
	e := getBTExec(threads)
	e.blockSize = blockSize
	e.numBlocks = numBlocks
	e.n = n
	e.noTailSteal = opts.NoTailSteal
	e.done = ctx.Done()
	e.fi = fi
	e.live = liveMatches
	for t := 0; t < threads; t++ {
		w := getBTWorker(t, g, pl, visit, opts.Instrument, maxDeg, opts.NoArena)
		if opts.MatchLimit > 0 {
			w.limit = opts.MatchLimit
			w.found = &e.found
		}
		w.exec = e
		e.workers[t] = w
		e.ranges[t] = &w.rng
	}
	for t := 0; t < threads; t++ {
		e.wg.Add(1)
		// w.spawn is a pre-bound zero-argument thunk created once per
		// worker lifetime: `go f(args)` heap-allocates a wrapper to carry
		// the arguments, while `go w.spawn()` reuses the existing funcval
		// and allocates nothing beyond the goroutine itself.
		go e.workers[t].spawn()
	}
	e.wg.Wait()

	total := uint64(0)
	// Exact capacities: AddLevel tops out at the pattern size and Add
	// appends one WorkerStats per worker, so the merged snapshot is three
	// allocations (it escapes to the caller and cannot be pooled).
	st := &Stats{
		Levels:  make([]LevelStats, 0, pl.Pattern.N()),
		Workers: make([]WorkerStats, 0, threads),
	}
	for _, w := range e.workers {
		total += w.count
		w.st.TailSteals += w.steals
		w.st.AddSetops(w.sst)
		for i, l := range w.levels {
			w.st.AddLevel(i, l.Candidates, l.Extended)
		}
		// Stats.Add copies entries by value, so the worker-owned backing
		// array is safe to lend here and reuse on the next execution.
		w.wstats[0] = WorkerStats{Worker: w.id, Time: w.busy, Matches: w.count}
		w.st.Workers = w.wstats[:]
		st.Add(&w.st)
		w.release()
	}
	aborted, panicErr := e.abort.Load(), e.panicErr
	e.release()
	st.Matches = total
	st.TotalTime = time.Since(start)
	PublishStats(o, st)
	if panicErr != nil {
		PublishAbort(o, panicErr)
		return total, st, panicErr
	}
	if err := CtxErr(ctx); err != nil && aborted {
		PublishAbort(o, err)
		return total, st, err
	}
	return total, st, nil
}

// btExec is the shared per-execution state of one BacktrackCtx call: the
// block cursor, abort/panic latches, and the worker/range tables the
// goroutines coordinate through. It exists as a pooled struct (rather
// than locals captured by goroutine closures) for the allocation
// trajectory: locals captured by N closures escape one by one, while a
// single pooled carrier costs nothing in steady state, and `go e.run(w)`
// spawns workers without materializing a closure at all.
type btExec struct {
	cursor int64  // atomic block claim cursor; leading for 64-bit alignment
	found  uint64 // shared early-termination counter (MatchLimit only)

	wg          sync.WaitGroup
	abort       atomic.Bool // set by cancellation or a worker panic
	panicOnce   sync.Once
	panicErr    *PanicError // first recovered panic wins
	done        <-chan struct{}
	fi          *faultinject.Injector
	live        *obs.Counter
	blockSize   int
	numBlocks   int
	n           int
	noTailSteal bool
	workers     []*btWorker
	ranges      []*vertexRange
}

var btExecPool = sync.Pool{New: func() any { return new(btExec) }}

// getBTExec returns an execution carrier with clean latches and tables
// sized for the worker count, reusing pooled capacity.
func getBTExec(threads int) *btExec {
	e := btExecPool.Get().(*btExec)
	e.cursor, e.found = 0, 0
	e.abort.Store(false)
	e.panicOnce = sync.Once{}
	e.panicErr = nil
	if cap(e.workers) < threads {
		e.workers = make([]*btWorker, threads)
		e.ranges = make([]*vertexRange, threads)
	} else {
		e.workers = e.workers[:threads]
		e.ranges = e.ranges[:threads]
	}
	return e
}

// release drops every per-execution reference (workers are already back
// in their own pool; keeping them reachable here would alias the next
// execution's state) and returns the carrier to the pool.
func (e *btExec) release() {
	clear(e.workers)
	clear(e.ranges)
	e.done = nil
	e.fi = nil
	e.live = nil
	e.panicErr = nil
	btExecPool.Put(e)
}

// run is one worker goroutine's work loop: claim blocks while the cursor
// lasts, then steal tails from straggling siblings.
func (e *btExec) run(w *btWorker) {
	defer e.wg.Done()
	// Busy time: the whole work loop, including the tail where a
	// worker keeps descending under its last root after the block
	// cursor is exhausted — exactly the straggler signature the
	// per-worker histograms exist to expose. Registered before the
	// recover defer so panicking workers report their time too.
	t0 := time.Now()
	defer func() { w.busy = time.Since(t0) }()
	// Panic containment: a visitor panic must not unwind past the
	// worker goroutine (that would kill the process). Record the
	// first one, abort the siblings, keep this worker's partial
	// counters — they are merged like any other worker's below.
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Worker: w.id, Value: r, Stack: debug.Stack()}
			e.panicOnce.Do(func() { e.panicErr = pe })
			e.abort.Store(true)
		}
	}()
	for {
		if e.abort.Load() {
			return
		}
		select {
		case <-e.done:
			e.abort.Store(true)
			return
		default:
		}
		if w.limit > 0 && atomic.LoadUint64(w.found) >= w.limit {
			return
		}
		b := int(atomic.AddInt64(&e.cursor, 1)) - 1
		if b >= e.numBlocks {
			break
		}
		lo := uint32(b * e.blockSize)
		hi := uint32((b + 1) * e.blockSize)
		if hi > uint32(e.n) {
			hi = uint32(e.n)
		}
		w.rng.reset(lo, hi, !e.noTailSteal)
		// After reset: a stall-injected straggler holds an armed,
		// stealable range, the scenario tail stealing exists for.
		e.fi.BlockClaimed(w.id)
		before := w.count
		w.runRoot()
		e.live.Add(w.id, w.count-before)
	}
	// Tail: the cursor is dry but a sibling may still be grinding
	// through a heavy block — split its remaining range and take the
	// upper half (once per block, see steal.go).
	for !e.noTailSteal {
		if e.abort.Load() {
			return
		}
		select {
		case <-e.done:
			e.abort.Store(true)
			return
		default:
		}
		if w.limit > 0 && atomic.LoadUint64(w.found) >= w.limit {
			return
		}
		lo, hi, ok := stealFrom(e.ranges, w.id)
		if !ok {
			return
		}
		w.steals++
		w.rng.reset(lo, hi, false)
		before := w.count
		w.runRoot()
		e.live.Add(w.id, w.count-before)
	}
}

type btWorker struct {
	id         int
	g          graph.Adjacency // per-worker view (see graph.Adjacency)
	volatile   bool            // rows are scratch-backed; see candidates
	pl         *plan.Plan
	visit      Visitor
	instrument bool

	st     Stats
	sst    setops.Stats
	levels []LevelStats  // per-level selectivity, folded into st at merge
	busy   time.Duration // wall-clock inside the work loop
	count  uint64
	steals uint64      // tail-steal splits this worker performed
	rng    vertexRange // in-flight level-0 range, stealable by idle siblings
	limit  uint64      // early-termination threshold (0 = off)
	found  *uint64     // shared found-so-far counter when limit > 0

	match    []uint32 // data vertex bound at each level
	byVertex []uint32 // data vertex bound to each pattern vertex
	bufA     [][]uint32
	bufB     [][]uint32
	labels   []int32  // required label per level (pattern.Unlabeled = any)
	connV    []uint32 // scratch: data vertices behind Connect[i]
	discV    []uint32 // scratch: data vertices behind Disconnect[i]

	// Pooling state. A pooled worker keeps its slab arena — and the
	// prefix-set buffers carved from it — across executions, so a worker
	// reused at the same (pattern size, max degree) shape allocates
	// nothing. wstats backs st.Workers so the merge loop does not allocate
	// a one-element slice per worker per execution.
	arena  *setops.Arena // backs scratch and kernel tiles; nil under NoArena
	k      int           // pattern size the scratch is shaped for
	maxDeg int           // buffer capacity the scratch is shaped for
	wstats [1]WorkerStats

	// exec is the current execution's carrier, set by BacktrackCtx before
	// spawn runs and cleared on release. spawn is the pre-bound goroutine
	// entry (`go w.spawn()`), allocated once per worker lifetime — see the
	// spawn loop in BacktrackCtx for why it is not `go e.run(w)`.
	exec  *btExec
	spawn func()
}

// btWorkerPool recycles workers (and the arenas inside them) across
// executions. NoArena workers bypass it so A/B allocation measurements
// see the unpooled trajectory.
var btWorkerPool = sync.Pool{New: func() any { return new(btWorker) }}

// getBTWorker returns a worker shaped for the plan, pooled unless noArena.
func getBTWorker(id int, g graph.Adjacency, pl *plan.Plan, visit Visitor, instrument bool, maxDeg int, noArena bool) *btWorker {
	var w *btWorker
	if noArena {
		w = new(btWorker)
	} else {
		w = btWorkerPool.Get().(*btWorker)
		if w.arena == nil {
			w.arena = setops.GetArena()
		}
	}
	if w.spawn == nil {
		w.spawn = func() { w.exec.run(w) }
	}
	k := pl.Pattern.N()
	if w.k != k || w.maxDeg < maxDeg {
		w.reshape(k, maxDeg)
	}
	w.id = id
	w.g = g.View()
	w.volatile = g.VolatileRows()
	w.pl = pl
	w.visit = visit
	w.instrument = instrument
	for i := 0; i < k; i++ {
		w.labels[i] = pl.Pattern.Label(pl.Order[i])
	}
	clear(w.levels)
	w.resetStats()
	w.busy = 0
	w.count = 0
	w.steals = 0
	w.limit = 0
	w.found = nil
	w.rng.reset(0, 0, false) // neutralize any stale armed range before siblings can steal
	return w
}

// reshape (re)builds the worker's scratch for a new (k, maxDeg) shape.
// With an arena attached every uint32 buffer is carved from it — after a
// Reset, since the previous shape's buffers alias the same slabs.
func (w *btWorker) reshape(k, maxDeg int) {
	w.k, w.maxDeg = k, maxDeg
	if w.arena != nil {
		w.arena.Reset()
	}
	alloc := func(n int) []uint32 {
		if w.arena != nil {
			return w.arena.Alloc(n)
		}
		return make([]uint32, 0, n)
	}
	w.levels = make([]LevelStats, k)
	w.match = alloc(k)[:k]
	w.byVertex = alloc(k)[:k]
	w.bufA = make([][]uint32, k)
	w.bufB = make([][]uint32, k)
	w.labels = make([]int32, k)
	w.connV = alloc(k)
	w.discV = alloc(k)
	for i := 0; i < k; i++ {
		w.bufA[i] = alloc(maxDeg)
		w.bufB[i] = alloc(maxDeg)
	}
}

// resetStats clears the per-execution counters while keeping the slice
// capacity the previous execution grew (Stats.Add copies entries out, so
// reuse cannot alias the merged snapshot).
func (w *btWorker) resetStats() {
	lv, wk, tn := w.st.Levels[:0], w.st.Workers[:0], w.st.TrieNodes[:0]
	w.st = Stats{}
	w.st.Levels, w.st.Workers, w.st.TrieNodes = lv, wk, tn
	w.sst = setops.Stats{Scratch: w.arena}
}

// release returns a pooled worker to the pool, dropping per-execution
// references so a pooled worker never pins a graph, plan or visitor.
// NoArena workers are simply dropped for the GC to take.
func (w *btWorker) release() {
	if w.arena == nil {
		return
	}
	w.g = nil
	w.pl = nil
	w.visit = nil
	w.found = nil
	w.exec = nil
	btWorkerPool.Put(w)
}

// runRoot explores matches whose level-0 vertex lies in the worker's
// armed range, claiming vertices one at a time so an idle sibling can
// steal the unclaimed tail mid-flight.
func (w *btWorker) runRoot() {
	k := w.pl.Pattern.N()
	wantLabel := w.labels[0]
	for {
		v, ok := w.rng.next()
		if !ok {
			return
		}
		if w.limit > 0 && atomic.LoadUint64(w.found) >= w.limit {
			return
		}
		w.levels[0].Candidates++
		if wantLabel != pattern.Unlabeled && w.g.Label(v) != wantLabel {
			continue
		}
		w.levels[0].Extended++
		before := w.count
		if k == 1 {
			w.emit(v, 0)
		} else {
			w.match[0] = v
			w.byVertex[w.pl.Order[0]] = v
			w.descend(1)
		}
		if w.limit > 0 && w.count != before {
			atomic.AddUint64(w.found, w.count-before)
		}
	}
}

// descend binds level i given levels [0,i) already bound.
func (w *btWorker) descend(i int) {
	last := i == w.pl.Pattern.N()-1
	if last && w.visit == nil {
		// Counting fast path: the final candidate set is never
		// materialized — the last set operation, the symmetry window and
		// the label filter all run count-only (see CountExtensions). The
		// scan width is unknown here, so the level records its extension
		// count as both candidates and extensions (see Stats.Levels).
		n := w.countLast(i)
		w.count += n
		w.levels[i].Candidates += n
		w.levels[i].Extended += n
		return
	}
	cands := w.candidates(i)
	if lo, hi, bounded := w.window(i); bounded {
		cands = setops.Clip(cands, lo, hi)
	}
	w.levels[i].Candidates += uint64(len(cands))
	var ext uint64
	wantLabel := w.labels[i]
	for _, v := range cands {
		if wantLabel != pattern.Unlabeled && w.g.Label(v) != wantLabel {
			continue
		}
		if w.usedAt(v, i) {
			continue
		}
		ext++
		if last {
			w.emit(v, i)
			continue
		}
		w.match[i] = v
		w.byVertex[w.pl.Order[i]] = v
		w.descend(i + 1)
	}
	w.levels[i].Extended += ext
}

// candidates computes the level-i candidate set from the plan's Connect
// and Disconnect lists. The returned slice is scratch owned by the worker.
func (w *btWorker) candidates(i int) []uint32 {
	var t0 time.Time
	if w.instrument {
		t0 = time.Now()
	}
	conn := w.pl.Connect[i]
	// Base: smallest adjacency list among connected back levels.
	base := conn[0]
	for _, j := range conn[1:] {
		if w.g.Degree(w.match[j]) < w.g.Degree(w.match[base]) {
			base = j
		}
	}
	cur := w.g.Neighbors(w.match[base])
	out, spare := w.bufA[i], w.bufB[i]
	for _, j := range conn {
		if j == base {
			continue
		}
		cur = IntersectNeighbors(w.g, out, cur, w.match[j], &w.sst)
		out, spare = spare, cur
	}
	for _, j := range w.pl.Disconnect[i] {
		cur = DifferenceNeighbors(w.g, out, cur, w.match[j], &w.sst)
		out, spare = spare, cur
	}
	if w.volatile && len(conn) == 1 && len(w.pl.Disconnect[i]) == 0 {
		// No set operation ran, so cur is still the raw decoded row — but
		// the caller retains it across the whole level-i loop, far beyond
		// the view's row lifetime. Pin it into the worker's scratch.
		cur = append(out[:0], cur...)
		out, spare = spare, cur
	}
	w.bufA[i], w.bufB[i] = out, spare
	if w.instrument {
		w.st.SetOpTime += time.Since(t0)
	}
	return cur
}

// countLast counts the extensions at the final level i without ever
// materializing its candidate set: the symmetry window and label filter
// are fused into the last (count-only) set operation, and already-bound
// vertices are subtracted arithmetically instead of scanned per candidate.
func (w *btWorker) countLast(i int) uint64 {
	var t0 time.Time
	if w.instrument {
		t0 = time.Now()
	}
	lo, hi, _ := w.window(i)
	f, ok := LevelFilter(w.g, lo, hi, w.labels[i])
	if !ok {
		return 0 // labeled level on an unlabeled graph
	}
	cv := w.connV[:0]
	for _, j := range w.pl.Connect[i] {
		cv = append(cv, w.match[j])
	}
	dv := w.discV[:0]
	for _, j := range w.pl.Disconnect[i] {
		dv = append(dv, w.match[j])
	}
	w.connV, w.discV = cv, dv
	var n uint64
	n, w.bufA[i], w.bufB[i] = CountExtensions(w.g, cv, dv, f, w.match[:i], w.bufA[i], w.bufB[i], &w.sst)
	if w.instrument {
		w.st.SetOpTime += time.Since(t0)
	}
	return n
}

// window returns the half-open symmetry-breaking window [lo, hi) for
// level i. bounded is false when the level has no symmetry constraints,
// letting callers skip the clip entirely.
func (w *btWorker) window(i int) (lo, hi uint32, bounded bool) {
	lo, hi = 0, ^uint32(0)
	for _, j := range w.pl.Greater[i] {
		if w.match[j]+1 > lo {
			lo = w.match[j] + 1
			bounded = true
		}
	}
	for _, j := range w.pl.Smaller[i] {
		if w.match[j] < hi {
			hi = w.match[j]
			bounded = true
		}
	}
	return lo, hi, bounded
}

// usedAt reports whether v is already bound at a level below i.
func (w *btWorker) usedAt(v uint32, i int) bool {
	for j := 0; j < i; j++ {
		if w.match[j] == v {
			return true
		}
	}
	return false
}

// emit completes the match with v at the last level and delivers it.
func (w *btWorker) emit(v uint32, i int) {
	w.count++
	if w.visit == nil {
		return
	}
	var t0 time.Time
	if w.instrument {
		t0 = time.Now()
	}
	w.match[i] = v
	w.byVertex[w.pl.Order[i]] = v
	w.st.Materialized += uint64(len(w.byVertex))
	if w.instrument {
		w.st.MaterializeTime += time.Since(t0)
		t0 = time.Now()
	}
	w.st.UDFCalls++
	w.visit(w.id, w.byVertex)
	if w.instrument {
		w.st.UDFTime += time.Since(t0)
	}
}
