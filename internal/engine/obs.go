package engine

import (
	"errors"
	"fmt"

	"morphing/internal/obs"
)

// Registry metric names shared by every engine model. Counters are
// cumulative over the process lifetime (Prometheus convention); the
// per-execution snapshot remains the Stats struct.
const (
	// MetricMatches is streamed live: executors flush each worker's match
	// delta at block/batch granularity so progress reporters and the HTTP
	// endpoint see movement mid-run. PublishStats therefore excludes it.
	MetricMatches = "engine_matches_total"

	MetricSetOps       = "engine_set_ops_total"
	MetricSetElems     = "engine_set_elems_total"
	MetricMaterialized = "engine_materialized_total"
	MetricUDFCalls     = "engine_udf_calls_total"
	MetricBranches     = "engine_branches_total"

	// Kernel path breakdown: which adaptive path (merge, unrolled, tile,
	// gallop, hub bitset, count-only) served each set operation, and how
	// many elements were written to destination slices. The six path
	// counters partition MetricSetOps; MetricSetWritten staying flat while
	// matching counts proves the last level ran without materialization.
	MetricSetMergeOps    = "engine_set_merge_ops_total"
	MetricSetGallopOps   = "engine_set_gallop_ops_total"
	MetricSetBitsetOps   = "engine_set_bitset_ops_total"
	MetricSetCountOps    = "engine_set_countonly_ops_total"
	MetricSetUnrolledOps = "engine_set_unrolled_ops_total"
	MetricSetTileOps     = "engine_set_tile_ops_total"
	MetricSetWritten     = "engine_set_written_elems_total"

	MetricSetOpTimeNS       = "engine_setop_time_ns_total"
	MetricMaterializeTimeNS = "engine_materialize_time_ns_total"
	MetricUDFTimeNS         = "engine_udf_time_ns_total"
	MetricRunTimeNS         = "engine_run_time_ns_total"

	// MetricMineDurationNS is a log-scale histogram of per-execution
	// wall-clock, one observation per Count/Match/CountAll.
	MetricMineDurationNS = "engine_mine_duration_ns"

	// Per-worker skew histograms: one observation per worker per
	// execution. A wide spread between p50 and p99 of
	// MetricWorkerTimeNS is load skew; a lone top-bucket observation is
	// a straggler (typically a worker stuck under a hub vertex).
	MetricWorkerTimeNS  = "engine_worker_time_ns"
	MetricWorkerMatches = "engine_worker_matches"

	// MetricTailSteals counts tail work-stealing splits: an idle worker
	// halving the heaviest in-flight block's remaining vertex range after
	// the block cursor ran dry. Rising steals with falling
	// engine_worker_time_ns skew is the mechanism working as intended.
	MetricTailSteals = "engine_tail_steals_total"

	// Trie (one-pass multi-pattern) execution: total plan levels the
	// merged trie shared (candidate computations saved versus mining each
	// pattern separately), and a histogram of how many patterns each
	// trie pass covered.
	MetricTrieSharedLevels    = "engine_trie_shared_levels_total"
	MetricTriePatternsPerPass = "engine_trie_patterns_per_pass"

	// Interruption counters, one increment per aborted execution:
	// cooperative cancellation, deadline expiry, and visitor/UDF panics
	// contained by the workers (see PublishAbort).
	MetricRunsCanceled = "engine_runs_canceled_total"
	MetricRunsDeadline = "engine_runs_deadline_total"
	MetricWorkerPanics = "engine_worker_panics_total"
)

// PublishStats adds a completed execution's Stats snapshot to the
// observer's registry — every counter except Matches, which executors
// stream live through MetricMatches while running (publishing it again
// here would double count). Call once per execution, after the workers
// have joined. Nil-safe in both arguments.
func PublishStats(o *obs.Observer, st *Stats) {
	if st == nil {
		return
	}
	o.Counter(MetricSetOps).Add(0, st.SetOps)
	o.Counter(MetricSetElems).Add(0, st.SetElems)
	o.Counter(MetricSetMergeOps).Add(0, st.SetMergeOps)
	o.Counter(MetricSetGallopOps).Add(0, st.SetGallopOps)
	o.Counter(MetricSetBitsetOps).Add(0, st.SetBitsetOps)
	o.Counter(MetricSetCountOps).Add(0, st.SetCountOps)
	o.Counter(MetricSetUnrolledOps).Add(0, st.SetUnrolledOps)
	o.Counter(MetricSetTileOps).Add(0, st.SetTileOps)
	o.Counter(MetricSetWritten).Add(0, st.SetWritten)
	o.Counter(MetricMaterialized).Add(0, st.Materialized)
	o.Counter(MetricUDFCalls).Add(0, st.UDFCalls)
	o.Counter(MetricBranches).Add(0, st.Branches)
	o.Counter(MetricTailSteals).Add(0, st.TailSteals)
	o.Counter(MetricTrieSharedLevels).Add(0, st.TrieSharedLevels)
	if st.TriePasses > 0 {
		o.Histogram(MetricTriePatternsPerPass).Observe(0, st.TriePatterns/st.TriePasses)
	}
	o.Counter(MetricSetOpTimeNS).Add(0, uint64(st.SetOpTime))
	o.Counter(MetricMaterializeTimeNS).Add(0, uint64(st.MaterializeTime))
	o.Counter(MetricUDFTimeNS).Add(0, uint64(st.UDFTime))
	o.Counter(MetricRunTimeNS).Add(0, uint64(st.TotalTime))
	o.Histogram(MetricMineDurationNS).Observe(0, uint64(st.TotalTime))
	for i, l := range st.Levels {
		if l.Candidates == 0 && l.Extended == 0 {
			continue
		}
		o.Counter(LevelCandidatesMetric(i)).Add(0, l.Candidates)
		o.Counter(LevelExtendedMetric(i)).Add(0, l.Extended)
	}
	wt := o.Histogram(MetricWorkerTimeNS)
	wm := o.Histogram(MetricWorkerMatches)
	for _, w := range st.Workers {
		wt.Observe(w.Worker, uint64(w.Time))
		wm.Observe(w.Worker, w.Matches)
	}
}

// levelMetricCacheSize bounds the precomputed per-level metric name
// tables. Real plans have single-digit levels; anything past the cache
// falls back to formatting.
const levelMetricCacheSize = 32

var levelCandidatesNames, levelExtendedNames = func() ([levelMetricCacheSize]string, [levelMetricCacheSize]string) {
	var c, e [levelMetricCacheSize]string
	for i := range c {
		c[i] = fmt.Sprintf("engine_level_%d_candidates_total", i)
		e[i] = fmt.Sprintf("engine_level_%d_extended_total", i)
	}
	return c, e
}()

// LevelCandidatesMetric names the per-level candidate counter for
// exploration level i (flat names — the registry has no label support).
// Names for realistic level counts are precomputed so PublishStats does
// not allocate on the per-execution hot path.
func LevelCandidatesMetric(i int) string {
	if i < levelMetricCacheSize {
		return levelCandidatesNames[i]
	}
	return fmt.Sprintf("engine_level_%d_candidates_total", i)
}

// LevelExtendedMetric names the per-level extension counter for level i.
// Extended/Candidates at one level is the measured selectivity the cost
// model's candidate-set estimates must track.
func LevelExtendedMetric(i int) string {
	if i < levelMetricCacheSize {
		return levelExtendedNames[i]
	}
	return fmt.Sprintf("engine_level_%d_extended_total", i)
}

// PublishAbort records an interrupted execution in the registry: one
// increment on the counter matching the typed error (cancel, deadline,
// or contained panic). nil errors and untyped errors add nothing, so
// executors can call it unconditionally on their abort paths.
func PublishAbort(o *obs.Observer, err error) {
	var pe *PanicError
	switch {
	case err == nil:
	case errors.As(err, &pe):
		o.Counter(MetricWorkerPanics).Inc(0)
	case errors.Is(err, ErrDeadlineExceeded):
		o.Counter(MetricRunsDeadline).Inc(0)
	case errors.Is(err, ErrCanceled):
		o.Counter(MetricRunsCanceled).Inc(0)
	}
}
