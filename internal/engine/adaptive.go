package engine

import (
	"morphing/internal/graph"
	"morphing/internal/pattern"
	"morphing/internal/setops"
)

// Adaptive set-operation entry points shared by every engine model. Each
// routes one candidate-set operation against the adjacency of a data
// vertex through the best available kernel: bitmap probes when the vertex
// is an indexed hub (graph.EnableHubIndex), otherwise the merge/gallop
// dispatch inside internal/setops. Keeping the dispatch here — next to the
// graph, which owns the hub index — lets the backtracking executor,
// AutoZero's schedule trie and BigJoin's dataflow stages share one policy.

// IntersectNeighbors intersects cur with the adjacency list of u into
// dst[:0]. cur must be sorted duplicate-free; the result is too.
func IntersectNeighbors(g graph.Adjacency, dst, cur []uint32, u uint32, st *setops.Stats) []uint32 {
	if bits := g.HubBits(u); bits != nil {
		return setops.IntersectBits(dst, cur, bits, st)
	}
	return setops.Intersect(dst, cur, g.Neighbors(u), st)
}

// DifferenceNeighbors subtracts the adjacency list of u from cur into
// dst[:0].
func DifferenceNeighbors(g graph.Adjacency, dst, cur []uint32, u uint32, st *setops.Stats) []uint32 {
	if bits := g.HubBits(u); bits != nil {
		return setops.DifferenceBits(dst, cur, bits, st)
	}
	return setops.Difference(dst, cur, g.Neighbors(u), st)
}

// LevelFilter builds the fused count-only filter for one plan level: the
// half-open symmetry window [lo, hi) plus the level's label requirement.
// ok is false when the level cannot match at all (a labeled pattern vertex
// against an unlabeled graph), letting callers skip the level outright.
func LevelFilter(g graph.Adjacency, lo, hi uint32, want int32) (f setops.Filter, ok bool) {
	f = setops.Filter{Lo: lo, Hi: hi}
	if want != pattern.Unlabeled {
		ls := g.Labels()
		if ls == nil {
			return f, false
		}
		f.Labels, f.Want = ls, want
	}
	return f, true
}

// CountExtensions counts the data vertices v that complete a partial
// match at its final level — v adjacent to every vertex in conn,
// non-adjacent to every vertex in disc, passing the filter, and distinct
// from every already-bound vertex — without materializing the final
// candidate set: all set operations but the last run through the adaptive
// materializing kernels, and the last one (plus the window and label
// filters) is count-only. With a single constraint the count is pure
// window arithmetic, and when a pair of hub vertices closes the level it
// is a word-parallel bitmap AND.
//
// conn must be non-empty. bufA and bufB are worker-owned scratch for the
// intermediate sets; the (possibly regrown) buffers are returned for
// reuse. bound may include the conn/disc vertices themselves — adjacency
// probes exclude them naturally.
func CountExtensions(g graph.Adjacency, conn, disc []uint32, f setops.Filter, bound []uint32, bufA, bufB []uint32, st *setops.Stats) (uint64, []uint32, []uint32) {
	base := 0
	for i := 1; i < len(conn); i++ {
		if g.Degree(conn[i]) < g.Degree(conn[base]) {
			base = i
		}
	}

	var count uint64
	switch {
	case len(conn) == 1 && len(disc) == 0:
		// No set operation at all: the count is window arithmetic over one
		// adjacency list (plus a label scan on labeled levels).
		count = setops.CountF(g.Neighbors(conn[0]), f, st)
	case len(conn) == 2 && len(disc) == 0 && g.HubBits(conn[0]) != nil && g.HubBits(conn[1]) != nil:
		count = setops.AndCountF(g.HubBits(conn[0]), g.HubBits(conn[1]), f, st)
	default:
		// Materialize every operation except the last; the final operation
		// is count-only with the window and label fused in.
		lastConn := -1
		if len(disc) == 0 {
			for i := len(conn) - 1; i >= 0; i-- {
				if i != base {
					lastConn = i
					break
				}
			}
		}
		cur := g.Neighbors(conn[base])
		out, spare := bufA, bufB
		for i, u := range conn {
			if i == base || i == lastConn {
				continue
			}
			cur = IntersectNeighbors(g, out, cur, u, st)
			out, spare = spare, cur
		}
		for i := 0; i < len(disc)-1; i++ {
			cur = DifferenceNeighbors(g, out, cur, disc[i], st)
			out, spare = spare, cur
		}
		bufA, bufB = out, spare
		if len(disc) > 0 {
			u := disc[len(disc)-1]
			if bits := g.HubBits(u); bits != nil {
				count = setops.DifferenceBitsCountF(cur, bits, f, st)
			} else {
				count = setops.DifferenceCountF(cur, g.Neighbors(u), f, st)
			}
		} else {
			u := conn[lastConn]
			if bits := g.HubBits(u); bits != nil {
				count = setops.IntersectBitsCountF(cur, bits, f, st)
			} else {
				count = setops.IntersectCountF(cur, g.Neighbors(u), f, st)
			}
		}
	}

	// The kernels counted any already-bound vertex that structurally
	// qualifies; subtract them (a match may not reuse a vertex).
	for _, u := range bound {
		if !f.Pass(u) {
			continue
		}
		ok := true
		for _, c := range conn {
			if !g.HasEdge(u, c) {
				ok = false
				break
			}
		}
		if ok {
			for _, d := range disc {
				if g.HasEdge(u, d) {
					ok = false
					break
				}
			}
		}
		if ok {
			count--
		}
	}
	return count, bufA, bufB
}
