package engine

import "sync/atomic"

// Tail work stealing. The atomic block cursor balances load at block
// granularity, but once it runs dry a single worker can stay pinned under
// a heavy block (typically one holding hub vertices) while its siblings
// idle — the straggler signature the engine_worker_time_ns histograms
// expose. To shave that tail, each worker advertises its in-flight level-0
// block as a stealable vertexRange: when the cursor is exhausted, an idle
// worker splits the heaviest remaining range in half and runs the upper
// half itself. Splitting is bounded — at most once per claimed block, and
// never below minStealRange vertices — so stealing cannot degenerate into
// contention on tiny ranges.

// minStealRange is the smallest remaining range worth splitting: below
// this the synchronization outweighs the imbalance.
const minStealRange = 4

// vertexRange is a claimable range of level-0 root vertices. The owner
// claims vertices one at a time with next; idle workers may steal the
// upper half of what remains with stealHalf. Position and limit share one
// atomic word so claim and steal linearize against each other.
type vertexRange struct {
	bits  atomic.Uint64 // pos<<32 | hi
	split atomic.Bool   // true once this block has been split (or is a stolen half)
}

// reset arms the range with [lo, hi). Stolen halves are reset with
// splittable=false so a block is split at most once end to end.
func (r *vertexRange) reset(lo, hi uint32, splittable bool) {
	r.split.Store(!splittable)
	r.bits.Store(uint64(lo)<<32 | uint64(hi))
}

// next claims the next vertex, returning false when the range (possibly
// shrunk by a thief) is exhausted.
func (r *vertexRange) next() (uint32, bool) {
	for {
		b := r.bits.Load()
		pos, hi := uint32(b>>32), uint32(b)
		if pos >= hi {
			return 0, false
		}
		if r.bits.CompareAndSwap(b, uint64(pos+1)<<32|uint64(hi)) {
			return pos, true
		}
	}
}

// remaining returns how many vertices are left unclaimed.
func (r *vertexRange) remaining() uint32 {
	b := r.bits.Load()
	pos, hi := uint32(b>>32), uint32(b)
	if pos >= hi {
		return 0
	}
	return hi - pos
}

// stealHalf splits off the upper half of the remaining range. It wins the
// per-block split flag first — holding it makes this thief the only
// writer of hi, so the CAS below can only lose to the owner advancing
// pos, and retrying terminates (pos is monotone). A steal that finds
// fewer than minStealRange vertices left still consumes the block's only
// split: a range that thin is not worth a second look.
func (r *vertexRange) stealHalf() (lo, hi uint32, ok bool) {
	if !r.split.CompareAndSwap(false, true) {
		return 0, 0, false
	}
	for {
		b := r.bits.Load()
		pos, end := uint32(b>>32), uint32(b)
		if pos >= end || end-pos < minStealRange {
			return 0, 0, false
		}
		mid := pos + (end-pos)/2
		if r.bits.CompareAndSwap(b, uint64(pos)<<32|uint64(mid)) {
			return mid, end, true
		}
	}
}

// stealFrom picks the heaviest still-splittable in-flight range among the
// siblings (self excluded) and steals its upper half. A lost race marks
// the victim split, so the rescan loop terminates.
func stealFrom(ranges []*vertexRange, self int) (lo, hi uint32, ok bool) {
	for {
		best, bestRem := -1, uint32(minStealRange-1)
		for i, r := range ranges {
			if i == self || r.split.Load() {
				continue
			}
			if rem := r.remaining(); rem > bestRem {
				best, bestRem = i, rem
			}
		}
		if best == -1 {
			return 0, 0, false
		}
		if lo, hi, ok = ranges[best].stealHalf(); ok {
			return lo, hi, true
		}
	}
}
