package engine

import (
	"context"
	"errors"
	"fmt"

	"morphing/internal/graph"
	"morphing/internal/pattern"
)

// Typed interruption sentinels. Both wrap the corresponding context
// error, so errors.Is works in either vocabulary:
//
//	errors.Is(err, engine.ErrCanceled)      // engine-level check
//	errors.Is(err, context.Canceled)        // context-level check
//
// Partial-result contract: when an executor returns one of these (or a
// *PanicError), the count/Stats values returned alongside are valid
// partial results — everything the workers completed before the abort
// took effect at the next work-block boundary. Callers that cannot use
// partials must discard them explicitly; the executors never return
// garbage with a typed interruption error.
var (
	// ErrCanceled reports cooperative cancellation of a run; counts and
	// stats returned with it are valid partials.
	ErrCanceled = fmt.Errorf("engine: run canceled (results are partial): %w", context.Canceled)
	// ErrDeadlineExceeded reports that a run's context deadline expired;
	// counts and stats returned with it are valid partials.
	ErrDeadlineExceeded = fmt.Errorf("engine: deadline exceeded (results are partial): %w", context.DeadlineExceeded)
)

// CtxErr maps ctx's failure state onto the engine's typed sentinels:
// nil while the context is live, ErrDeadlineExceeded after its deadline
// passed, ErrCanceled for any other cancellation.
func CtxErr(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadlineExceeded
	default:
		return ErrCanceled
	}
}

// PanicError reports a panic recovered inside an executor worker —
// almost always thrown by a user-supplied Visitor/UDF. The executor
// recovers it, aborts the sibling workers at their next block boundary,
// and surfaces exactly one PanicError (the first panic wins) instead of
// crashing the process. Counts returned alongside are valid partials.
type PanicError struct {
	// Worker is the executor worker ID that recovered the panic.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: worker %d: panic in visitor/UDF: %v", e.Worker, e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err) inside a UDF)
// to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Interrupted reports whether err is a typed interruption — cooperative
// cancellation, deadline expiry, or a contained worker panic — i.e.
// whether the values returned alongside it are valid partial results.
// Plan/validation errors and other hard failures return false.
func Interrupted(err error) bool {
	var pe *PanicError
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.As(err, &pe)
}

// CtxEngine is the optional context-aware superset of Engine. All four
// engine models implement it; the Ctx methods honor cooperative
// cancellation at work-block/batch boundaries and follow the
// partial-result contract above. CountAllCtx additionally guarantees
// that on interruption the returned slice holds each pattern's partial
// count (zero for patterns not yet started).
//
// Engine itself stays unchanged so existing call sites and third-party
// implementations keep compiling; use the package-level CountCtx /
// CountAllCtx / MatchCtx helpers to dispatch against any Engine.
type CtxEngine interface {
	Engine
	CountCtx(ctx context.Context, g graph.Adjacency, p *pattern.Pattern) (uint64, *Stats, error)
	CountAllCtx(ctx context.Context, g graph.Adjacency, ps []*pattern.Pattern) ([]uint64, *Stats, error)
	MatchCtx(ctx context.Context, g graph.Adjacency, p *pattern.Pattern, visit Visitor) (*Stats, error)
}

// CountCtx runs e.Count under ctx when e implements CtxEngine. For plain
// engines it degrades gracefully: the context is checked before and
// after the (uninterruptible) run, so a pre-expired context never starts
// work and an expiry during the run is still reported — just without
// mid-run cancellation.
func CountCtx(ctx context.Context, e Engine, g graph.Adjacency, p *pattern.Pattern) (uint64, *Stats, error) {
	if ce, ok := e.(CtxEngine); ok {
		return ce.CountCtx(ctx, g, p)
	}
	if err := CtxErr(ctx); err != nil {
		return 0, nil, err
	}
	c, st, err := e.Count(g, p)
	if err == nil {
		err = CtxErr(ctx)
	}
	return c, st, err
}

// CountAllCtx runs e.CountAll under ctx; see CountCtx for the plain
// Engine fallback semantics.
func CountAllCtx(ctx context.Context, e Engine, g graph.Adjacency, ps []*pattern.Pattern) ([]uint64, *Stats, error) {
	if ce, ok := e.(CtxEngine); ok {
		return ce.CountAllCtx(ctx, g, ps)
	}
	if err := CtxErr(ctx); err != nil {
		return nil, nil, err
	}
	counts, st, err := e.CountAll(g, ps)
	if err == nil {
		err = CtxErr(ctx)
	}
	return counts, st, err
}

// MatchCtx runs e.Match under ctx; see CountCtx for the plain Engine
// fallback semantics.
func MatchCtx(ctx context.Context, e Engine, g graph.Adjacency, p *pattern.Pattern, visit Visitor) (*Stats, error) {
	if ce, ok := e.(CtxEngine); ok {
		return ce.MatchCtx(ctx, g, p, visit)
	}
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	st, err := e.Match(g, p, visit)
	if err == nil {
		err = CtxErr(ctx)
	}
	return st, err
}
