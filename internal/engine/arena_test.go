package engine

import (
	"sync"
	"testing"

	"morphing/internal/dataset"
	"morphing/internal/pattern"
	"morphing/internal/plan"
)

// TestPooledArenaConcurrentExecutions is the arena-reuse race check: many
// concurrent executions over one shared graph, each drawing pooled workers
// whose private arenas are reset and recycled between runs. Under -race
// this proves no arena (or carved buffer) is ever visible to two workers
// at once; the count assertions prove reset/reuse never leaks one
// execution's scratch into the next.
func TestPooledArenaConcurrentExecutions(t *testing.T) {
	g, err := dataset.ErdosRenyi(200, 22, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*plan.Plan, 0, 2)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.House()} {
		pl, err := plan.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, pl)
	}
	// Reference counts with arenas disabled: fresh heap buffers per worker,
	// nothing shared, nothing pooled.
	want := make([]uint64, len(plans))
	for i, pl := range plans {
		n, _, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2, NoArena: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}
	tr, err := plan.MergePlans(plans)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	const iters = 3
	var wg sync.WaitGroup
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				// Alternate pattern per iteration so pooled workers get
				// reshaped for different k/plan shapes, not just rebound.
				i := (gr + it) % len(plans)
				n, _, err := Backtrack(g, plans[i], nil, ExecOptions{Threads: 2}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if n != want[i] {
					t.Errorf("goroutine %d iter %d plan %d: count %d, want %d", gr, it, i, n, want[i])
					return
				}
				counts, _, err := BacktrackTrie(g, tr, ExecOptions{Threads: 2}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range counts {
					if counts[j] != want[j] {
						t.Errorf("goroutine %d iter %d trie plan %d: count %d, want %d", gr, it, j, counts[j], want[j])
						return
					}
				}
			}
		}(gr)
	}
	wg.Wait()
}

// NoArena and arena-backed executions must agree exactly, and the arena
// run must actually route dense levels through the tile kernel (the
// NoArena run cannot: tile dispatch requires scratch). FourClique because
// its middle level materializes full adjacency intersections — tile and
// unrolled ops are charged only on materializing kernels; count-only
// levels book under SetCountOps regardless of the kernel used.
func TestNoArenaMatchesArenaCounts(t *testing.T) {
	// Dense enough that adjacency lists clear tileMinLen.
	g, err := dataset.ErdosRenyi(300, 140, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(pattern.FourClique())
	if err != nil {
		t.Fatal(err)
	}
	off, stOff, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2, NoArena: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	on, stOn, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if on != off {
		t.Fatalf("arena=%d, no-arena=%d", on, off)
	}
	if stOff.SetTileOps != 0 {
		t.Errorf("NoArena run charged %d tile ops; tile path needs scratch", stOff.SetTileOps)
	}
	if stOn.SetTileOps == 0 {
		t.Error("arena run never took the tile path on a dense graph")
	}
	if stOn.SetUnrolledOps == 0 {
		t.Error("arena run never took the unrolled path")
	}
}
