package engine

import (
	"fmt"
	"sync"
	"testing"

	"morphing/internal/canon"
	"morphing/internal/dataset"
	"morphing/internal/graph"
	"morphing/internal/pattern"
	"morphing/internal/plan"
	"morphing/internal/refmatch"
)

func completeGraph(n int) *graph.Graph {
	var edges [][2]uint32
	for u := uint32(0); u < uint32(n); u++ {
		for v := u + 1; v < uint32(n); v++ {
			edges = append(edges, [2]uint32{u, v})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func countBT(t *testing.T, g *graph.Graph, p *pattern.Pattern, threads int) uint64 {
	t.Helper()
	pl, err := plan.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Backtrack(g, pl, nil, ExecOptions{Threads: threads}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != got {
		t.Fatalf("Stats.Matches=%d, count=%d", st.Matches, got)
	}
	return got
}

func TestBacktrackKnownCounts(t *testing.T) {
	k5 := completeGraph(5)
	cases := []struct {
		name string
		p    *pattern.Pattern
		want uint64
	}{
		{"triangles in K5", pattern.Triangle(), 10},
		{"4-cliques in K5", pattern.FourClique(), 5},
		{"E 4-cycles in K5", pattern.FourCycle(), 15},
		{"V 4-cycles in K5", pattern.FourCycle().AsVertexInduced(), 0},
		{"5-clique in K5", pattern.FiveClique(), 1},
		{"edges in K5", pattern.Edge(), 10},
		{"E wedges in K5", pattern.Wedge(), 30},
		{"V wedges in K5", pattern.Wedge().AsVertexInduced(), 0},
	}
	for _, tc := range cases {
		if got := countBT(t, k5, tc.p, 2); got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestBacktrackSingleVertexPattern(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]uint32{{0, 1}, {2, 3}}, []int32{1, 2, 1, 1})
	one := pattern.MustNew(1, nil)
	if got := countBT(t, g, one, 1); got != 4 {
		t.Fatalf("unlabeled single vertex: %d, want 4", got)
	}
	labeled := pattern.MustNew(1, nil, pattern.WithLabels([]int32{1}))
	if got := countBT(t, g, labeled, 1); got != 3 {
		t.Fatalf("labeled single vertex: %d, want 3", got)
	}
}

func TestBacktrackMatchesOracleOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g, err := dataset.ErdosRenyi(40, 7, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 5; k++ {
			if k == 5 && testing.Short() {
				continue
			}
			ps, err := canon.AllConnectedPatterns(k)
			if err != nil {
				t.Fatal(err)
			}
			for _, base := range ps {
				for _, iv := range []pattern.Induced{pattern.EdgeInduced, pattern.VertexInduced} {
					p := base.Variant(iv)
					want := refmatch.Count(g, p)
					got := countBT(t, g, p, 3)
					if got != want {
						t.Errorf("seed=%d pattern=%v: backtrack=%d oracle=%d", seed, p, got, want)
					}
				}
			}
		}
	}
}

func TestBacktrackLabeledMatchesOracle(t *testing.T) {
	g, err := dataset.ErdosRenyi(50, 8, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []*pattern.Pattern{
		pattern.Triangle(), pattern.Wedge(), pattern.TailedTriangle(),
		pattern.FourCycle(), pattern.ChordalFourCycle(), pattern.FourStar(),
	}
	labelings := [][]int32{
		{0, 0, 0, 0}, {0, 1, 2, 1}, {2, 2, 1, pattern.Unlabeled},
	}
	for _, shape := range shapes {
		for _, lab := range labelings {
			labels := lab[:shape.N()]
			p := pattern.MustNew(shape.N(), shape.Edges(), pattern.WithLabels(labels))
			for _, iv := range []pattern.Induced{pattern.EdgeInduced, pattern.VertexInduced} {
				q := p.Variant(iv)
				want := refmatch.Count(g, q)
				got := countBT(t, g, q, 2)
				if got != want {
					t.Errorf("pattern=%v: backtrack=%d oracle=%d", q, got, want)
				}
			}
		}
	}
}

func TestBacktrackStreamsUniqueCanonicalMatches(t *testing.T) {
	g, err := dataset.ErdosRenyi(30, 6, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*pattern.Pattern{
		pattern.Triangle(),
		pattern.TailedTriangle(),
		pattern.FourCycle().AsVertexInduced(),
		pattern.ChordalFourCycle(),
	} {
		pl, err := plan.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		auts := canon.Automorphisms(p)
		var mu sync.Mutex
		got := map[string]bool{}
		dups := 0
		_, st, err := Backtrack(g, pl, func(worker int, m []uint32) {
			c := canon.CanonicalMatch(p, m, auts)
			k := fmt.Sprint(c)
			mu.Lock()
			if got[k] {
				dups++
			}
			got[k] = true
			mu.Unlock()
		}, ExecOptions{Threads: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dups != 0 {
			t.Errorf("pattern %v: %d duplicate subgraphs emitted (symmetry breaking broken)", p, dups)
		}
		want := refmatch.Matches(g, p)
		if len(got) != len(want) {
			t.Errorf("pattern %v: %d unique matches, oracle has %d", p, len(got), len(want))
		}
		for _, m := range want {
			if !got[fmt.Sprint(m)] {
				t.Errorf("pattern %v: oracle match %v missing", p, m)
			}
		}
		if st.UDFCalls != uint64(len(got))+uint64(dups) {
			t.Errorf("UDFCalls=%d, want %d", st.UDFCalls, len(got))
		}
	}
}

func TestBacktrackMatchVertexOrder(t *testing.T) {
	// Path graph 0-1-2: the only wedge has center 1. Emitted matches must
	// be indexed by pattern vertex: wedge = path 0-1-2 with center 1.
	g := graph.MustFromEdges(3, [][2]uint32{{0, 1}, {1, 2}}, nil)
	p := pattern.Wedge() // edges 0-1, 1-2: center is pattern vertex 1
	pl, err := plan.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen [][]uint32
	_, _, err = Backtrack(g, pl, func(_ int, m []uint32) {
		mu.Lock()
		seen = append(seen, append([]uint32(nil), m...))
		mu.Unlock()
	}, ExecOptions{Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("got %d matches, want 1", len(seen))
	}
	if seen[0][1] != 1 {
		t.Fatalf("center of wedge bound to %d, want data vertex 1 (m=%v)", seen[0][1], seen[0])
	}
}

func TestBacktrackThreadCountInvariance(t *testing.T) {
	g, err := dataset.MiCo().Scaled(0.005).Generate()
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.TailedTriangle().AsVertexInduced()
	want := countBT(t, g, p, 1)
	for _, threads := range []int{2, 4, 8} {
		if got := countBT(t, g, p, threads); got != want {
			t.Errorf("threads=%d: count %d, want %d", threads, got, want)
		}
	}
}

func TestBacktrackInstrumentation(t *testing.T) {
	g, err := dataset.ErdosRenyi(100, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.FourCycle().AsVertexInduced()
	pl, err := plan.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2, Instrument: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.SetOps == 0 || st.SetElems == 0 {
		t.Error("set operations not counted")
	}
	if st.SetOpTime <= 0 {
		t.Error("instrumented run has zero SetOpTime")
	}
	if st.TotalTime <= 0 {
		t.Error("TotalTime missing")
	}
	// Counting runs must not materialize matches.
	if st.Materialized != 0 || st.UDFCalls != 0 {
		t.Errorf("counting run materialized %d, UDF %d", st.Materialized, st.UDFCalls)
	}
}

func TestBacktrackNilPlan(t *testing.T) {
	if _, _, err := Backtrack(completeGraph(3), nil, nil, ExecOptions{}, nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{SetOps: 1, Matches: 2, UDFCalls: 3}
	a.Add(&Stats{SetOps: 10, Matches: 20, UDFCalls: 30, Branches: 5})
	if a.SetOps != 11 || a.Matches != 22 || a.UDFCalls != 33 || a.Branches != 5 {
		t.Fatalf("merge wrong: %+v", a)
	}
}
