package engine

import (
	"testing"

	"morphing/internal/canon"
	"morphing/internal/dataset"
	"morphing/internal/pattern"
	"morphing/internal/plan"
	"morphing/internal/refmatch"
	"morphing/internal/setops"
)

// Triangle counting has a single-constraint middle level and a two-
// constraint final level, so a visit==nil run needs no destination writes
// at all: level 1 reuses the root's adjacency list, level 2 is count-only.
func TestCountingTriangleWritesNothing(t *testing.T) {
	g, err := dataset.ErdosRenyi(60, 9, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := refmatch.Count(g, pattern.Triangle()); got != want {
		t.Fatalf("triangles=%d, oracle=%d", got, want)
	}
	if st.SetWritten != 0 {
		t.Errorf("counting run wrote %d candidate elements, want 0", st.SetWritten)
	}
	if st.SetCountOps == 0 {
		t.Error("no count-only operations recorded")
	}
	if st.Materialized != 0 {
		t.Errorf("counting run materialized %d match vertices", st.Materialized)
	}
}

// The six path counters partition SetOps exactly, with and without the
// hub-bitset index.
func TestCountingStatsPathPartition(t *testing.T) {
	for _, hub := range []bool{false, true} {
		g, err := dataset.ErdosRenyi(80, 12, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if hub {
			g.EnableHubIndex(4)
		}
		for _, p := range []*pattern.Pattern{
			pattern.FourClique(),
			pattern.FourCycle().AsVertexInduced(),
			pattern.House(),
		} {
			pl, err := plan.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			_, st, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2}, nil)
			if err != nil {
				t.Fatal(err)
			}
			sum := st.SetMergeOps + st.SetGallopOps + st.SetBitsetOps + st.SetCountOps +
				st.SetUnrolledOps + st.SetTileOps
			if sum != st.SetOps {
				t.Errorf("hub=%v %v: paths sum to %d, SetOps=%d", hub, p, sum, st.SetOps)
			}
			if hub && st.SetBitsetOps == 0 {
				t.Errorf("hub=%v %v: no bitset operations despite full hub index", hub, p)
			}
		}
	}
}

// Counts must be identical with the hub-bitset index enabled and
// disabled, across every connected pattern shape and both induced
// semantics, and must match the reference oracle.
func TestBacktrackHubIndexMatchesOracle(t *testing.T) {
	g, err := dataset.ErdosRenyi(45, 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k <= 4; k++ {
		ps, err := canon.AllConnectedPatterns(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range ps {
			for _, iv := range []pattern.Induced{pattern.EdgeInduced, pattern.VertexInduced} {
				p := base.Variant(iv)
				pl, err := plan.Build(p)
				if err != nil {
					t.Fatal(err)
				}
				g.DisableHubIndex()
				off, _, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2}, nil)
				if err != nil {
					t.Fatal(err)
				}
				g.EnableHubIndex(4)
				on, _, err := Backtrack(g, pl, nil, ExecOptions{Threads: 2}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if on != off {
					t.Errorf("pattern=%v: hub-on=%d hub-off=%d", p, on, off)
				}
				if want := refmatch.Count(g, p); on != want {
					t.Errorf("pattern=%v: count=%d oracle=%d", p, on, want)
				}
			}
		}
	}
	g.DisableHubIndex()
}

// CountExtensions must agree with materialize-then-filter for arbitrary
// conn/disc/window/bound combinations, hub index on and off.
func TestCountExtensionsMatchesMaterialized(t *testing.T) {
	g, err := dataset.ErdosRenyi(70, 10, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	reference := func(conn, disc []uint32, f setops.Filter, bound []uint32) uint64 {
		var n uint64
	next:
		for v := uint32(0); v < uint32(g.NumVertices()); v++ {
			if !f.Pass(v) {
				continue
			}
			for _, u := range bound {
				if u == v {
					continue next
				}
			}
			for _, c := range conn {
				if !g.HasEdge(v, c) {
					continue next
				}
			}
			for _, d := range disc {
				if g.HasEdge(v, d) {
					continue next
				}
			}
			n++
		}
		return n
	}
	cases := []struct {
		conn, disc []uint32
		f          setops.Filter
	}{
		{[]uint32{3}, nil, setops.All()},
		{[]uint32{3}, nil, setops.Window(2, 40)},
		{[]uint32{3, 17}, nil, setops.All()},
		{[]uint32{3, 17}, nil, setops.Window(10, 60)},
		{[]uint32{3, 17, 29}, nil, setops.All()},
		{[]uint32{3, 17}, []uint32{5}, setops.Window(0, 50)},
		{[]uint32{8}, []uint32{3, 17}, setops.All()},
		{[]uint32{3, 17, 29}, []uint32{5, 40}, setops.Window(1, 69)},
		{[]uint32{3}, nil, setops.Filter{Hi: ^uint32(0), Labels: g.Labels(), Want: 1}},
		{[]uint32{3, 17}, []uint32{5}, setops.Filter{Lo: 4, Hi: 66, Labels: g.Labels(), Want: 0}},
	}
	for _, hub := range []bool{false, true} {
		if hub {
			g.EnableHubIndex(1)
		} else {
			g.DisableHubIndex()
		}
		bufA := make([]uint32, 0, g.MaxDegree())
		bufB := make([]uint32, 0, g.MaxDegree())
		for i, tc := range cases {
			bound := append(append([]uint32{}, tc.conn...), tc.disc...)
			bound = append(bound, 0, 25) // unrelated bound vertices too
			var st setops.Stats
			var got uint64
			got, bufA, bufB = CountExtensions(g, tc.conn, tc.disc, tc.f, bound, bufA, bufB, &st)
			if want := reference(tc.conn, tc.disc, tc.f, bound); got != want {
				t.Errorf("hub=%v case %d: CountExtensions=%d, reference=%d", hub, i, got, want)
			}
		}
	}
	g.DisableHubIndex()
}

func TestLevelFilter(t *testing.T) {
	unlabeled := completeGraph(4)
	if _, ok := LevelFilter(unlabeled, 0, 10, 3); ok {
		t.Error("labeled level on unlabeled graph reported matchable")
	}
	if f, ok := LevelFilter(unlabeled, 2, 9, pattern.Unlabeled); !ok || f.Lo != 2 || f.Hi != 9 || f.Labels != nil {
		t.Errorf("unlabeled level filter wrong: %+v ok=%v", f, ok)
	}
	g, err := dataset.ErdosRenyi(10, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := LevelFilter(g, 0, 5, 1); !ok || f.Want != 1 || f.Labels == nil {
		t.Errorf("labeled level filter wrong: %+v ok=%v", f, ok)
	}
}

func TestAddSetops(t *testing.T) {
	var s Stats
	s.AddSetops(setops.Stats{Ops: 10, Elems: 100, MergeOps: 4, GallopOps: 3, BitsetOps: 2, CountOps: 1, Written: 50})
	s.AddSetops(setops.Stats{Ops: 1, CountOps: 1})
	if s.SetOps != 11 || s.SetElems != 100 || s.SetMergeOps != 4 || s.SetGallopOps != 3 ||
		s.SetBitsetOps != 2 || s.SetCountOps != 2 || s.SetWritten != 50 {
		t.Fatalf("merge wrong: %+v", s)
	}
}
