package server

import (
	"sync"
	"time"
)

// SLO phases: where a query's wall time went. A query contributes an
// observation to every phase it actually passed through — admit
// (prepare + admission pipeline, up to enqueue), queue (enqueue to
// worker pickup), mine (worker execution), and total (submit to
// terminal outcome, present for every query including rejections and
// cache hits).
const (
	sloAdmit = iota
	sloQueue
	sloMine
	sloTotal
	sloPhases
)

var sloPhaseNames = [sloPhases]string{"admit", "queue", "mine", "total"}

// SLOConfig declares the serving objectives the tracker scores against.
type SLOConfig struct {
	// Window is the rolling window burn rates are computed over
	// (default 5m).
	Window time.Duration
	// Buckets is the ring granularity inside the window (default 30):
	// observations age out one bucket (Window/Buckets) at a time.
	Buckets int
	// LatencyObjective is the per-phase latency target: an observation
	// over this duration is "bad" for its phase (default 1s). One
	// objective applies to every phase — the per-phase burn rates then
	// attribute WHICH phase is burning the budget.
	LatencyObjective time.Duration
	// LatencyGoal is the fraction of observations that must meet the
	// objective (default 0.99, i.e. a 1% latency error budget).
	LatencyGoal float64
	// ErrorGoal is the maximum acceptable fraction of failed queries
	// (default 0.01). Client-caused rejections (bad_request) don't
	// count; everything else — including load-shed rejections and
	// deadline kills — spends the availability budget.
	ErrorGoal float64
	// MaxTenants bounds per-tenant tracking (default 32); observations
	// from tenants beyond the cap aggregate under "~other".
	MaxTenants int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.Buckets <= 0 {
		c.Buckets = 30
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = time.Second
	}
	if c.LatencyGoal <= 0 || c.LatencyGoal >= 1 {
		c.LatencyGoal = 0.99
	}
	if c.ErrorGoal <= 0 || c.ErrorGoal >= 1 {
		c.ErrorGoal = 0.01
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 32
	}
	return c
}

// sloBucket aggregates the observations of one time slice.
type sloBucket struct {
	start int64 // unix ns of the slice this bucket currently holds; 0 = empty
	count [sloPhases]uint64
	over  [sloPhases]uint64 // observations exceeding the latency objective
	sumNS [sloPhases]uint64
	maxNS [sloPhases]uint64
	total uint64 // queries (total-phase observations)
	errs  uint64 // failed queries
}

// sloRing is a circular bucket array covering one rolling window.
// Bucket i holds the slice starting at start where (start/width)%n == i;
// a new slice landing on a stale bucket resets it, which is how old
// observations age out without any background sweeper.
type sloRing struct {
	buckets []sloBucket
}

func newSLORing(n int) *sloRing { return &sloRing{buckets: make([]sloBucket, n)} }

// bucketFor returns the bucket owning the slice containing t, resetting
// it if it still holds an older slice.
func (r *sloRing) bucketFor(t int64, width int64) *sloBucket {
	start := t - t%width
	b := &r.buckets[(start/width)%int64(len(r.buckets))]
	if b.start != start {
		*b = sloBucket{start: start}
	}
	return b
}

// observe records one query's phase durations.
func (r *sloRing) observe(t int64, width int64, objNS int64, d [sloPhases]time.Duration, valid [sloPhases]bool, failed bool) {
	b := r.bucketFor(t, width)
	for i := 0; i < sloPhases; i++ {
		if !valid[i] {
			continue
		}
		ns := uint64(d[i])
		b.count[i]++
		b.sumNS[i] += ns
		if ns > b.maxNS[i] {
			b.maxNS[i] = ns
		}
		if int64(d[i]) > objNS {
			b.over[i]++
		}
	}
	b.total++
	if failed {
		b.errs++
	}
}

// sum folds the buckets still inside the window ending at now.
func (r *sloRing) sum(now int64, windowNS int64) sloBucket {
	var out sloBucket
	cutoff := now - windowNS
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.start == 0 || b.start <= cutoff || b.start > now {
			continue
		}
		for p := 0; p < sloPhases; p++ {
			out.count[p] += b.count[p]
			out.over[p] += b.over[p]
			out.sumNS[p] += b.sumNS[p]
			if b.maxNS[p] > out.maxNS[p] {
				out.maxNS[p] = b.maxNS[p]
			}
		}
		out.total += b.total
		out.errs += b.errs
	}
	return out
}

// sloTracker scores query outcomes against the configured objectives
// over a rolling window, globally and per tenant.
//
// Burn rate follows the SRE convention: the fraction of the error
// budget consumed per unit of budget available in the window —
// badFraction / (1 - goal) for latency, errorFraction / errorGoal for
// availability. 1.0 means "burning exactly as fast as the budget
// allows"; sustained values above 1 exhaust the budget early and are
// what alerts page on.
type sloTracker struct {
	cfg     SLOConfig
	widthNS int64

	mu      sync.Mutex
	global  *sloRing
	tenants map[string]*sloRing
}

// sloOverflowTenant aggregates tenants beyond the MaxTenants cap.
const sloOverflowTenant = "~other"

func newSLOTracker(cfg SLOConfig) *sloTracker {
	cfg = cfg.withDefaults()
	return &sloTracker{
		cfg:     cfg,
		widthNS: int64(cfg.Window) / int64(cfg.Buckets),
		global:  newSLORing(cfg.Buckets),
		tenants: make(map[string]*sloRing),
	}
}

// observe records one query outcome at time now for the given tenant.
func (tr *sloTracker) observe(now time.Time, tenant string, d [sloPhases]time.Duration, valid [sloPhases]bool, failed bool) {
	if tr == nil {
		return
	}
	t := now.UnixNano()
	objNS := int64(tr.cfg.LatencyObjective)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.global.observe(t, tr.widthNS, objNS, d, valid, failed)
	ring := tr.tenants[tenant]
	if ring == nil {
		if len(tr.tenants) >= tr.cfg.MaxTenants {
			tenant = sloOverflowTenant
			ring = tr.tenants[tenant]
		}
		if ring == nil {
			ring = newSLORing(tr.cfg.Buckets)
			tr.tenants[tenant] = ring
		}
	}
	ring.observe(t, tr.widthNS, objNS, d, valid, failed)
}

// SLOPhase is one phase's scoring over the window.
type SLOPhase struct {
	Count        uint64  `json:"count"`
	Over         uint64  `json:"over"` // observations exceeding the objective
	OverFraction float64 `json:"over_fraction"`
	MeanNS       int64   `json:"mean_ns"`
	MaxNS        int64   `json:"max_ns"`
	// BurnRate is OverFraction / (1 - LatencyGoal): how fast this phase
	// is consuming the latency error budget (1.0 = exactly at budget).
	BurnRate float64 `json:"burn_rate"`
}

// SLOTenant is one tenant's scoring over the window.
type SLOTenant struct {
	Total           uint64  `json:"total"`
	Errors          uint64  `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	ErrorBurnRate   float64 `json:"error_burn_rate"`
	LatencyBurnRate float64 `json:"latency_burn_rate"` // total phase
}

// SLOStatus is the /slo payload: the rolling-window objectives
// scorecard.
type SLOStatus struct {
	WindowNS           int64   `json:"window_ns"`
	LatencyObjectiveNS int64   `json:"latency_objective_ns"`
	LatencyGoal        float64 `json:"latency_goal"`
	ErrorGoal          float64 `json:"error_goal"`

	Total     uint64  `json:"total"`
	Errors    uint64  `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// ErrorBurnRate is ErrorRate / ErrorGoal.
	ErrorBurnRate float64 `json:"error_burn_rate"`
	// BurnRate is the headline number: the worst of the availability
	// burn and the total-phase latency burn. > 0 means budget is being
	// spent; sustained > 1 means the objective will be missed.
	BurnRate float64 `json:"burn_rate"`

	Phases  map[string]SLOPhase  `json:"phases"`
	Tenants map[string]SLOTenant `json:"tenants,omitempty"`
}

// Status folds the window ending at now into the scorecard.
func (tr *sloTracker) Status(now time.Time) SLOStatus {
	cfg := tr.cfg
	out := SLOStatus{
		WindowNS:           int64(cfg.Window),
		LatencyObjectiveNS: int64(cfg.LatencyObjective),
		LatencyGoal:        cfg.LatencyGoal,
		ErrorGoal:          cfg.ErrorGoal,
		Phases:             make(map[string]SLOPhase, sloPhases),
	}
	t := now.UnixNano()
	latBudget := 1 - cfg.LatencyGoal

	tr.mu.Lock()
	defer tr.mu.Unlock()
	g := tr.global.sum(t, int64(cfg.Window))
	out.Total = g.total
	out.Errors = g.errs
	if g.total > 0 {
		out.ErrorRate = float64(g.errs) / float64(g.total)
		out.ErrorBurnRate = out.ErrorRate / cfg.ErrorGoal
	}
	out.BurnRate = out.ErrorBurnRate
	for i := 0; i < sloPhases; i++ {
		p := SLOPhase{Count: g.count[i], Over: g.over[i], MaxNS: int64(g.maxNS[i])}
		if g.count[i] > 0 {
			p.OverFraction = float64(g.over[i]) / float64(g.count[i])
			p.MeanNS = int64(g.sumNS[i] / g.count[i])
			p.BurnRate = p.OverFraction / latBudget
		}
		out.Phases[sloPhaseNames[i]] = p
		if i == sloTotal && p.BurnRate > out.BurnRate {
			out.BurnRate = p.BurnRate
		}
	}
	if len(tr.tenants) > 0 {
		out.Tenants = make(map[string]SLOTenant, len(tr.tenants))
		for name, ring := range tr.tenants {
			b := ring.sum(t, int64(cfg.Window))
			if b.total == 0 {
				continue
			}
			tn := SLOTenant{Total: b.total, Errors: b.errs}
			tn.ErrorRate = float64(b.errs) / float64(b.total)
			tn.ErrorBurnRate = tn.ErrorRate / cfg.ErrorGoal
			if b.count[sloTotal] > 0 {
				tn.LatencyBurnRate = (float64(b.over[sloTotal]) / float64(b.count[sloTotal])) / latBudget
			}
			out.Tenants[name] = tn
		}
	}
	return out
}
