package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"morphing/internal/obs"
)

// sloObs builds the observation vector for a query that passed through
// every phase with the given total latency (phases split arbitrarily).
func sloObs(total time.Duration) ([sloPhases]time.Duration, [sloPhases]bool) {
	var d [sloPhases]time.Duration
	d[sloAdmit] = total / 10
	d[sloQueue] = total / 10
	d[sloMine] = total - d[sloAdmit] - d[sloQueue]
	d[sloTotal] = total
	return d, [sloPhases]bool{true, true, true, true}
}

// TestSLOBurnRate feeds a synthetic latency trace that crosses the
// objective and checks the burn-rate arithmetic: with a 99% goal (1%
// budget), 10 bad out of 110 queries burns at ~9x budget; once the
// window slides past the trace, the burn returns to zero.
func TestSLOBurnRate(t *testing.T) {
	tr := newSLOTracker(SLOConfig{
		Window:           10 * time.Second,
		Buckets:          10,
		LatencyObjective: 100 * time.Millisecond,
		LatencyGoal:      0.99,
		ErrorGoal:        0.01,
	})
	base := time.Unix(1000, 0)

	// Before any traffic: a zero scorecard, not NaN.
	if st := tr.Status(base); st.BurnRate != 0 || st.Total != 0 {
		t.Fatalf("empty tracker status %+v, want zeros", st)
	}

	for i := 0; i < 100; i++ {
		d, valid := sloObs(10 * time.Millisecond)
		tr.observe(base, "tenant-a", d, valid, false)
	}
	for i := 0; i < 10; i++ {
		d, valid := sloObs(500 * time.Millisecond)
		tr.observe(base, "tenant-a", d, valid, false)
	}

	st := tr.Status(base)
	if st.Total != 110 {
		t.Fatalf("total = %d, want 110", st.Total)
	}
	// over_fraction = 10/110 ≈ 0.0909; burn = 0.0909 / 0.01 ≈ 9.09.
	tot := st.Phases["total"]
	if tot.Over != 10 {
		t.Fatalf("total-phase over = %d, want 10", tot.Over)
	}
	if st.BurnRate < 8.5 || st.BurnRate > 9.5 {
		t.Fatalf("burn rate = %v, want ~9.09", st.BurnRate)
	}
	if st.ErrorBurnRate != 0 {
		t.Fatalf("error burn = %v with no failures", st.ErrorBurnRate)
	}
	// The slow observations were all mine-phase: mine burns, queue does
	// not (its observations are 50ms < 100ms objective).
	if st.Phases["mine"].BurnRate <= 0 {
		t.Fatal("mine phase shows no burn despite slow mining")
	}
	if st.Phases["queue"].BurnRate != 0 {
		t.Fatalf("queue phase burn = %v, want 0", st.Phases["queue"].BurnRate)
	}
	if tn, ok := st.Tenants["tenant-a"]; !ok || tn.LatencyBurnRate < 8.5 {
		t.Fatalf("tenant scorecard %+v, want latency burn ~9", tn)
	}

	// Slide the window past the trace: burn decays back to zero.
	if st := tr.Status(base.Add(11 * time.Second)); st.BurnRate != 0 || st.Total != 0 {
		t.Fatalf("status after window slid %+v, want zeros", st)
	}

	// Error-budget burn: 2 failures in 100 at a 1% goal burns at 2x.
	later := base.Add(20 * time.Second)
	for i := 0; i < 100; i++ {
		d, valid := sloObs(10 * time.Millisecond)
		tr.observe(later, "tenant-a", d, valid, i < 2)
	}
	st = tr.Status(later)
	if st.Errors != 2 {
		t.Fatalf("errors = %d, want 2", st.Errors)
	}
	if st.ErrorBurnRate < 1.9 || st.ErrorBurnRate > 2.1 {
		t.Fatalf("error burn = %v, want ~2.0", st.ErrorBurnRate)
	}
	if st.BurnRate != st.ErrorBurnRate {
		t.Fatalf("headline burn %v should be the error burn %v (latency is clean)", st.BurnRate, st.ErrorBurnRate)
	}
}

// TestSLOTenantOverflow verifies the per-tenant cap: tenants beyond
// MaxTenants aggregate under the overflow bucket instead of growing the
// map without bound.
func TestSLOTenantOverflow(t *testing.T) {
	tr := newSLOTracker(SLOConfig{MaxTenants: 2})
	base := time.Unix(1000, 0)
	d, valid := sloObs(time.Millisecond)
	for _, tenant := range []string{"a", "b", "c", "d", "e"} {
		tr.observe(base, tenant, d, valid, false)
	}
	st := tr.Status(base)
	if len(st.Tenants) != 3 {
		t.Fatalf("tenant map %v, want a, b and %s", st.Tenants, sloOverflowTenant)
	}
	if ov := st.Tenants[sloOverflowTenant]; ov.Total != 3 {
		t.Fatalf("overflow tenant total = %d, want 3 (c, d, e)", ov.Total)
	}
	if st.Total != 5 {
		t.Fatalf("global total = %d, want 5", st.Total)
	}
}

// TestSLOBucketAging verifies ring-bucket reuse: an observation landing
// a full window later resets the stale bucket rather than double
// counting into it.
func TestSLOBucketAging(t *testing.T) {
	tr := newSLOTracker(SLOConfig{Window: 10 * time.Second, Buckets: 10})
	base := time.Unix(1000, 0)
	d, valid := sloObs(time.Millisecond)
	tr.observe(base, "a", d, valid, false)
	// Exactly one window later this lands on the same ring slot.
	tr.observe(base.Add(10*time.Second), "a", d, valid, false)
	if st := tr.Status(base.Add(10 * time.Second)); st.Total != 1 {
		t.Fatalf("total = %d after bucket wrap, want 1 (old slice aged out)", st.Total)
	}
}

// TestSLOAndTimeseriesEndpoints drives real queries through the HTTP
// surface and checks the new observability endpoints: /slo serves a
// scorecard that saw the traffic, /timeseries serves non-empty ring
// buffers for the phase histograms and query counters.
func TestSLOAndTimeseriesEndpoints(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInFlight: 2,
		// A tight objective so the test can assert burn > 0: every query
		// is "slow" relative to 1ns.
		SLO: SLOConfig{LatencyObjective: time.Nanosecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := &Client{Base: ts.URL}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(t.Context(), QueryRequest{Patterns: []string{"triangle"}, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	s.hist.SampleNow() // deterministic: don't wait for the 1s tick

	var slo SLOStatus
	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slo.Total < 3 {
		t.Fatalf("/slo total = %d, want >= 3", slo.Total)
	}
	if got := slo.Phases["mine"].Count; got < 3 {
		t.Fatalf("/slo mine phase count = %d, want >= 3", got)
	}
	if slo.BurnRate <= 0 {
		t.Fatalf("/slo burn rate = %v, want > 0 under a 1ns objective", slo.BurnRate)
	}
	if slo.ErrorBurnRate != 0 {
		t.Fatalf("/slo error burn = %v, want 0 (all queries succeeded)", slo.ErrorBurnRate)
	}

	var series obs.HistorySnapshot
	resp, err = http.Get(ts.URL + "/timeseries?n=5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(series.Series) == 0 {
		t.Fatal("/timeseries served no series")
	}
	qps := series.Series[MetricQueries]
	if len(qps) == 0 {
		t.Fatalf("/timeseries has no %s series; got keys %d", MetricQueries, len(series.Series))
	}
	if got := qps[len(qps)-1].Value; got < 3 {
		t.Fatalf("%s last sample = %v, want >= 3", MetricQueries, got)
	}
	if _, ok := series.Series[MetricPhaseTotalNS+":p99"]; !ok {
		t.Fatalf("no windowed quantile series for %s", MetricPhaseTotalNS)
	}
}

// TestSLORecordsRejections verifies the terminal-outcome taxonomy:
// load-shed rejections spend the availability budget, client mistakes
// (bad_request) do not.
func TestSLORecordsRejections(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})

	// Client error: unparsable pattern.
	if _, qerr := s.Submit(t.Context(), &QueryRequest{Patterns: []string{"no-such-pattern!!"}}, "cli", nil); qerr == nil || qerr.Code != CodeBadRequest {
		t.Fatalf("bad pattern: %+v, want bad_request", qerr)
	}
	st := s.slo.Status(time.Now())
	if st.Total != 1 || st.Errors != 0 {
		t.Fatalf("after bad_request: total=%d errors=%d, want 1/0 (client errors spend no budget)", st.Total, st.Errors)
	}
	if counter(s, MetricErrors) != 0 {
		t.Fatal("bad_request incremented the error counter")
	}

	// Server-side failure: quota exhausted counts against availability.
	s.mu.Lock()
	s.cfg.PerClientInFlight = 1
	s.clients["greedy"] = 1
	s.mu.Unlock()
	if _, qerr := s.Submit(t.Context(), &QueryRequest{Patterns: []string{"triangle"}}, "greedy", nil); qerr == nil || qerr.Code != CodeQuotaExhausted {
		t.Fatalf("quota: %+v, want quota_exhausted", qerr)
	}
	st = s.slo.Status(time.Now())
	if st.Total != 2 || st.Errors != 1 {
		t.Fatalf("after quota reject: total=%d errors=%d, want 2/1", st.Total, st.Errors)
	}
	if counter(s, MetricErrors) != 1 {
		t.Fatalf("error counter = %d, want 1", counter(s, MetricErrors))
	}
	s.mu.Lock()
	delete(s.clients, "greedy")
	s.cfg.PerClientInFlight = 0
	s.mu.Unlock()
}

// TestHistoryLifecycleWithDrain verifies the sampler goroutine dies
// with the server (no leak across New + Drain) and that a negative
// SampleInterval disables sampling entirely.
func TestHistoryLifecycleWithDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(chordRing(16), Config{
		MaxInFlight: 1,
		Obs:         &obs.Observer{Metrics: obs.NewRegistry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.History() == nil {
		t.Fatal("default config should run a History sampler")
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base, "server History sampler")

	s2, err := New(chordRing(16), Config{
		MaxInFlight:    1,
		SampleInterval: -1,
		Obs:            &obs.Observer{Metrics: obs.NewRegistry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(t.Context())
	if s2.History() != nil {
		t.Fatal("negative SampleInterval must disable the sampler")
	}
	// The endpoint must still answer, gracefully.
	rec := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeseries", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("disabled /timeseries body %q: %v", rec.Body.String(), err)
	}
	if body["disabled"] != true {
		t.Fatalf("disabled /timeseries body %v, want disabled marker", body)
	}
}
