package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"morphing/internal/core"
	"morphing/internal/faultinject"
	"morphing/internal/graph"
	"morphing/internal/obs"
	"morphing/internal/pattern"
	"morphing/internal/peregrine"
	"morphing/internal/report"
)

// chordRing builds the deterministic test graph: a cycle plus stride-2
// chords, dense in triangles and 4-cycles.
func chordRing(n int) *graph.Graph {
	var edges [][2]uint32
	for i := 0; i < n; i++ {
		edges = append(edges, [2]uint32{uint32(i), uint32((i + 1) % n)})
		edges = append(edges, [2]uint32{uint32(i), uint32((i + 2) % n)})
	}
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		panic(err)
	}
	return g
}

// waitForGoroutines polls until the goroutine count drops back to at
// most base (same hand-rolled goleak as internal/obs/leak_test.go: the
// count is noisy, so retry rather than compare once).
func waitForGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s leaked goroutines: %d > baseline %d\n%s", what, n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newTestServer builds a server over a fresh graph with an isolated
// metrics registry, and drains it at cleanup so worker goroutines never
// outlive the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
	}
	s, err := New(chordRing(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s
}

// counter reads a server metric.
func counter(s *Server, name string) uint64 { return s.o.Counter(name).Value() }

// queueState snapshots (queued, executing) under the server lock.
func queueState(s *Server) (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.executing
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// fixedResult builds the result shape the real execute path produces,
// so cache alignment logic sees codec-parsable pattern strings.
func fixedResult(t *task) *QueryResult {
	res := &QueryResult{Cache: "miss"}
	for i, p := range t.patterns {
		res.Patterns = append(res.Patterns, p.String())
		res.Counts = append(res.Counts, uint64(100+i))
	}
	return res
}

// TestQueryEndToEndCountsMatchRunner runs real queries over the wire —
// httptest + Client + ndjson stream + core.Runner — and checks the
// answers against a direct local run.
func TestQueryEndToEndCountsMatchRunner(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		cfg := Config{MaxInFlight: 2, Obs: &obs.Observer{Metrics: obs.NewRegistry()}}
		s, err := New(chordRing(64), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		g := chordRing(64)
		queries := []*pattern.Pattern{pattern.Triangle(), pattern.FourCycle().AsVertexInduced()}
		r := &core.Runner{Engine: peregrine.New(0)}
		want, _, err := r.Counts(g, queries)
		if err != nil {
			t.Fatal(err)
		}

		var events []string
		c := &Client{Base: ts.URL, OnEvent: func(ev StreamEvent) { events = append(events, ev.Type) }}
		res, err := c.Query(context.Background(), QueryRequest{
			Patterns: []string{"triangle", "4-cycle:v"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Counts) != 2 || res.Counts[0] != want[0] || res.Counts[1] != want[1] {
			t.Fatalf("served counts %v, local runner %v", res.Counts, want)
		}
		if res.Cache != "miss" {
			t.Errorf("first query cache disposition %q", res.Cache)
		}
		if res.Report == nil || res.Report.Phase != core.PhaseDone {
			t.Errorf("no completed run report attached: %+v", res.Report)
		}
		if len(events) == 0 {
			t.Error("no progress events observed on the stream")
		}

		// MNI app over the same wire.
		mni, err := c.Query(context.Background(), QueryRequest{Patterns: []string{"triangle"}, App: "mni"})
		if err != nil {
			t.Fatal(err)
		}
		if len(mni.Supports) != 1 || mni.Supports[0] <= 0 {
			t.Fatalf("MNI supports %v", mni.Supports)
		}

		// Health reflects the served graph.
		h, err := c.Health(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" || h.Vertices != 64 {
			t.Errorf("health %+v", h)
		}
	}()
	waitForGoroutines(t, base, "server e2e")
}

func TestBadRequestRejections(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, req := range []QueryRequest{
		{},                                     // no patterns
		{Patterns: []string{"no-such-shape"}},  // unresolvable pattern
		{Patterns: []string{"triangle"}, App: "pagerank"},
		{Patterns: []string{"triangle"}, Engine: "spark"},
		{Patterns: []string{"triangle"}, Trie: "sometimes"},
	} {
		_, qerr := s.Submit(context.Background(), &req, "", nil)
		if qerr == nil || qerr.Code != CodeBadRequest {
			t.Errorf("req %+v: got %v, want bad_request", req, qerr)
		}
		if qerr.Retryable {
			t.Errorf("req %+v: bad_request marked retryable", req)
		}
	}
}

// TestOverBudgetFatal: a query whose match-volume estimate alone exceeds
// the admission budget is rejected fatally — retrying can never help.
func TestOverBudgetFatal(t *testing.T) {
	s := newTestServer(t, Config{AdmissionBudget: 1})
	_, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
	if qerr == nil || qerr.Code != CodeOverBudget {
		t.Fatalf("got %v, want over_budget", qerr)
	}
	if qerr.Retryable {
		t.Error("over_budget must be fatal")
	}
	if got := counter(s, rejectMetric(CodeOverBudget)); got != 1 {
		t.Errorf("reject counter %d", got)
	}
}

// TestQueueFullBackpressure fills the one worker and the one queue slot,
// then checks the third query bounces with a retryable queue_full and a
// retry-after hint rather than buffering without bound.
func TestQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, CacheSize: -1, RetryAfter: 123 * time.Millisecond})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testExec = func(t *task) (*QueryResult, *QueryError) {
		started <- struct{}{}
		<-block
		return fixedResult(t), nil
	}

	req := func() *QueryRequest { return &QueryRequest{Patterns: []string{"triangle"}} }
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			if _, qerr := s.Submit(context.Background(), req(), "", nil); qerr != nil {
				t.Errorf("blocked-then-released query failed: %v", qerr)
			}
		}()
		if i == 0 {
			<-started // the worker holds query A before B is submitted
		}
	}
	waitUntil(t, "queue to hold one task", func() bool { q, _ := queueState(s); return q == 1 })

	_, qerr := s.Submit(context.Background(), req(), "", nil)
	if qerr == nil || qerr.Code != CodeQueueFull {
		t.Fatalf("third query got %v, want queue_full", qerr)
	}
	if !qerr.Retryable || qerr.RetryAfter != 123*time.Millisecond {
		t.Errorf("queue_full must be retryable with the hint, got retryable=%v after=%v",
			qerr.Retryable, qerr.RetryAfter)
	}

	close(block)
	wg.Wait()
}

// TestPerClientQuota: one tenant at its quota is rejected retryably
// while another tenant still gets in (fairness isolation).
func TestPerClientQuota(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2, PerClientInFlight: 1, CacheSize: -1})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testExec = func(t *task) (*QueryResult, *QueryError) {
		started <- struct{}{}
		<-block
		return fixedResult(t), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "alice", nil); qerr != nil {
			t.Errorf("alice's first query failed: %v", qerr)
		}
	}()
	<-started

	_, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"4-cycle"}}, "alice", nil)
	if qerr == nil || qerr.Code != CodeQuotaExhausted || !qerr.Retryable {
		t.Fatalf("alice's second query got %v, want retryable quota_exhausted", qerr)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"4-cycle"}}, "bob", nil); qerr != nil {
			t.Errorf("bob's query failed behind alice's quota: %v", qerr)
		}
	}()
	<-started

	close(block)
	wg.Wait()

	// Quota released on settle: alice can query again.
	if _, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "alice", nil); qerr != nil {
		t.Fatalf("alice still quota-blocked after her query settled: %v", qerr)
	}
}

// TestCacheHitMissEpoch covers the result cache: first execution is a
// miss, an identical query is a hit (no re-execution), a permuted
// spelling of the same set is still a hit re-aligned to request order,
// and a graph swap (epoch bump) invalidates everything.
func TestCacheHitMissEpoch(t *testing.T) {
	s := newTestServer(t, Config{})
	var execs int
	s.testExec = func(t *task) (*QueryResult, *QueryError) {
		s.mu.Lock()
		execs++
		s.mu.Unlock()
		return fixedResult(t), nil
	}
	submit := func(patterns ...string) *QueryResult {
		t.Helper()
		res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: patterns}, "", nil)
		if qerr != nil {
			t.Fatalf("submit %v: %v", patterns, qerr)
		}
		return res
	}

	r1 := submit("triangle", "4-cycle")
	if r1.Cache != "miss" || execs != 1 {
		t.Fatalf("first query: cache=%q execs=%d", r1.Cache, execs)
	}
	r2 := submit("triangle", "4-cycle")
	if r2.Cache != "hit" || execs != 1 {
		t.Fatalf("identical query: cache=%q execs=%d, want hit without re-execution", r2.Cache, execs)
	}
	if counter(s, MetricCacheHits) != 1 || counter(s, MetricCacheMisses) != 1 {
		t.Errorf("hit/miss counters %d/%d", counter(s, MetricCacheHits), counter(s, MetricCacheMisses))
	}

	// Permuted spelling of the same set: same key, answers re-aligned.
	r3 := submit("4-cycle", "triangle")
	if r3.Cache != "hit" || execs != 1 {
		t.Fatalf("permuted query: cache=%q execs=%d", r3.Cache, execs)
	}
	if r3.Counts[1] != r1.Counts[0] || r3.Counts[0] != r1.Counts[1] {
		t.Fatalf("permuted hit not re-aligned: %v vs %v", r3.Counts, r1.Counts)
	}

	// NoCache bypasses both lookup and store.
	res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle", "4-cycle"}, NoCache: true}, "", nil)
	if qerr != nil || res.Cache != "miss" || execs != 2 {
		t.Fatalf("nocache query: res=%+v qerr=%v execs=%d", res, qerr, execs)
	}

	// Epoch bump: the cached answer is for the old graph.
	s.SetGraph(chordRing(64))
	r4 := submit("triangle", "4-cycle")
	if r4.Cache != "miss" || execs != 3 {
		t.Fatalf("post-swap query: cache=%q execs=%d, want a fresh miss", r4.Cache, execs)
	}
}

// TestCacheAlignmentFailureFallsThrough: a cached entry whose stored
// patterns cannot cover the incoming query set must be treated as a miss
// and re-executed. Regression test: this path once released s.mu on the
// cache hit and fell through into lock-held code, so the next branch
// double-unlocked the mutex — a fatal runtime error that took down the
// whole daemon.
func TestCacheAlignmentFailureFallsThrough(t *testing.T) {
	s := newTestServer(t, Config{})
	var execs int
	s.testExec = func(t *task) (*QueryResult, *QueryError) {
		s.mu.Lock()
		execs++
		s.mu.Unlock()
		return fixedResult(t), nil
	}
	submit := func() *QueryResult {
		t.Helper()
		res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
		if qerr != nil {
			t.Fatalf("submit: %v", qerr)
		}
		return res
	}

	if r := submit(); r.Cache != "miss" || execs != 1 {
		t.Fatalf("first query: cache=%q execs=%d", r.Cache, execs)
	}
	// Corrupt the cached entry so alignResult cannot map it onto the
	// query set.
	s.mu.Lock()
	if s.cache.len() != 1 {
		s.mu.Unlock()
		t.Fatalf("expected one cached entry, have %d", s.cache.len())
	}
	for _, el := range s.cache.entries {
		el.Value.(*cacheEntry).res = &QueryResult{Patterns: []string{"not a pattern"}}
	}
	s.mu.Unlock()

	if r := submit(); r.Cache != "miss" || execs != 2 {
		t.Fatalf("unalignable entry: cache=%q execs=%d, want fall-through miss and re-execution", r.Cache, execs)
	}
	// The re-execution overwrote the bad entry: the next query is a
	// clean hit again.
	if r := submit(); r.Cache != "hit" || execs != 2 {
		t.Fatalf("repaired entry: cache=%q execs=%d", r.Cache, execs)
	}
}

// TestSingleFlight: N identical concurrent queries execute once; the
// leader reports miss, every passenger reports coalesced with the same
// answers, and passengers consume no queue slots.
func TestSingleFlight(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	block := make(chan struct{})
	var execs int
	s.testExec = func(t *task) (*QueryResult, *QueryError) {
		s.mu.Lock()
		execs++
		s.mu.Unlock()
		<-block
		return fixedResult(t), nil
	}

	const passengers = 8
	results := make(chan *QueryResult, passengers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "lead", nil)
		if qerr != nil {
			t.Errorf("leader: %v", qerr)
			return
		}
		results <- res
	}()
	waitUntil(t, "the leader's flight to register", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.cache.flights) == 1
	})
	for i := 0; i < passengers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct client tokens: passengers must not burn quota or
			// queue slots (queue capacity is 1 and it is empty here).
			res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, fmt.Sprint("c", i), nil)
			if qerr != nil {
				t.Errorf("passenger %d: %v", i, qerr)
				return
			}
			results <- res
		}(i)
	}
	// Every passenger must be parked on the flight before release (the
	// coalesced counter moves at attach time).
	waitUntil(t, "passengers to attach", func() bool {
		return counter(s, MetricCoalesced) == uint64(passengers)
	})
	if q, e := queueState(s); q != 0 || e != 1 {
		t.Fatalf("passengers consumed slots: queued=%d executing=%d", q, e)
	}
	close(block)
	wg.Wait()
	close(results)

	var miss, coalesced int
	for res := range results {
		switch res.Cache {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("unexpected disposition %q", res.Cache)
		}
		if len(res.Counts) != 1 || res.Counts[0] != 100 {
			t.Errorf("wrong coalesced answer %v", res.Counts)
		}
	}
	if execs != 1 || miss != 1 || coalesced != passengers {
		t.Errorf("execs=%d miss=%d coalesced=%d, want 1/1/%d", execs, miss, coalesced, passengers)
	}
}

// TestDeadlineWhileQueued: a query whose deadline expires before a
// worker frees up gets the typed deadline error without ever mining.
func TestDeadlineWhileQueued(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, CacheSize: -1})
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testExec = func(t *task) (*QueryResult, *QueryError) {
		started <- struct{}{}
		<-block
		return fixedResult(t), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
	}()
	<-started

	// The second query queues behind the blocked worker and its deadline
	// expires there; once the worker frees up it must refuse to mine the
	// dead query and return the typed deadline error.
	type outcome struct{ qerr *QueryError }
	ch := make(chan outcome, 1)
	go func() {
		_, qerr := s.Submit(context.Background(),
			&QueryRequest{Patterns: []string{"4-cycle"}, DeadlineMS: 30}, "", nil)
		ch <- outcome{qerr}
	}()
	waitUntil(t, "the deadlined query to queue", func() bool { q, _ := queueState(s); return q == 1 })
	time.Sleep(60 * time.Millisecond) // let its deadline lapse while queued
	close(block)

	o := <-ch
	if o.qerr == nil || o.qerr.Code != CodeDeadline {
		t.Fatalf("queued-past-deadline query got %v, want deadline", o.qerr)
	}
	if o.qerr.Retryable {
		t.Error("deadline must be fatal")
	}
	wg.Wait()
}

// TestDrainWithStragglers: drain stops admission (typed retryable
// rejection), waits, then cancels stragglers at the drain deadline; the
// stragglers' clients receive typed errors with marked partial counts,
// every task settles, and no goroutine outlives Drain.
func TestDrainWithStragglers(t *testing.T) {
	base := runtime.NumGoroutine()
	s := func() *Server {
		cfg := Config{MaxInFlight: 1, MaxQueue: 4, CacheSize: -1,
			DrainTimeout: 50 * time.Millisecond,
			Obs:          &obs.Observer{Metrics: obs.NewRegistry()}}
		s, err := New(chordRing(64), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}()

	started := make(chan struct{}, 1)
	s.testExec = func(tk *task) (*QueryResult, *QueryError) {
		started <- struct{}{}
		// A cooperative straggler: mines until its context dies, then
		// reports partial progress — the engine cancellation contract.
		<-tk.ctx.Done()
		qe := classifyCtxErr(tk.ctx.Err(), "while mining")
		qe.Phase = core.PhaseMine
		qe.Partial = []report.PartialReport{{Pattern: "straggler", Count: 41}}
		return nil, qe
	}

	type outcome struct {
		res  *QueryResult
		qerr *QueryError
	}
	outcomes := make(chan outcome, 2)
	for i, p := range []string{"triangle", "4-cycle"} {
		go func(p string) {
			res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{p}}, "", nil)
			outcomes <- outcome{res, qerr}
		}(p)
		if i == 0 {
			<-started // the first query is mining before the second queues
		}
	}
	waitUntil(t, "one executing one queued", func() bool { q, e := queueState(s); return q == 1 && e == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitUntil(t, "drain to start", s.Draining)

	// Admission is closed: new queries bounce retryably.
	_, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
	if qerr == nil || qerr.Code != CodeDraining || !qerr.Retryable {
		t.Fatalf("query during drain got %v, want retryable draining", qerr)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	var canceled, withPartials int
	for i := 0; i < 2; i++ {
		o := <-outcomes
		if o.qerr == nil {
			t.Fatalf("straggler %d settled without the typed cancellation: %+v", i, o.res)
		}
		if o.qerr.Code == CodeCanceled || o.qerr.Code == CodeDeadline {
			canceled++
		}
		if len(o.qerr.Partial) > 0 {
			if o.qerr.Partial[0].Count != 41 {
				t.Errorf("partial count %d", o.qerr.Partial[0].Count)
			}
			withPartials++
		}
	}
	if canceled != 2 {
		t.Errorf("%d stragglers canceled with typed errors, want 2", canceled)
	}
	// The executing straggler reports partials; the queued one never
	// started, so it legitimately has none.
	if withPartials < 1 {
		t.Error("no straggler surfaced partial counts")
	}
	if got := counter(s, MetricDrainCanceled); got == 0 {
		t.Error("drain-canceled counter never moved")
	}

	// Idempotent: a second Drain returns the first result immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
	waitForGoroutines(t, base, "drain")
}

// TestPanicIsolation arms the real fault injector, panics a real query
// mid-mining, and checks the failure is contained to that query: typed
// panic error out, worker pool intact, next query fine.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, CacheSize: -1})

	disarm, err := faultinject.Arm(faultinject.Config{PanicAtMatch: 1, PanicMessage: "chaos probe"})
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
	disarm()
	if qerr == nil || qerr.Code != CodePanic {
		t.Fatalf("panicking query got %v, want the typed panic error", qerr)
	}
	if qerr.Retryable {
		t.Error("panic must be fatal")
	}
	if got := counter(s, MetricPanics); got == 0 {
		t.Error("panic counter never moved")
	}

	// The worker survived: the same server still answers.
	res, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
	if qerr != nil {
		t.Fatalf("server broken after a contained panic: %v", qerr)
	}
	if len(res.Counts) != 1 || res.Counts[0] == 0 {
		t.Fatalf("post-panic answer %v", res.Counts)
	}
}

// TestPanicOutsideEngineContainment: a panic from serving code itself
// (here the test seam) is caught by the server's own recover, not just
// the engines' per-worker containment.
func TestPanicOutsideEngineContainment(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1})
	s.testExec = func(t *task) (*QueryResult, *QueryError) { panic("serving-layer bug") }
	_, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil)
	if qerr == nil || qerr.Code != CodePanic {
		t.Fatalf("got %v, want panic", qerr)
	}
	s.testExec = nil
	if _, qerr := s.Submit(context.Background(), &QueryRequest{Patterns: []string{"triangle"}}, "", nil); qerr != nil {
		t.Fatalf("worker pool did not survive the panic: %v", qerr)
	}
}

// TestClientRetryBackoff scripts the server side: two retryable bounces,
// then success. The client must use exactly three attempts, honor the
// retry taxonomy, and never retry fatals.
func TestClientRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	var calls int
	fail := func(w http.ResponseWriter, code Code, retryAfterMS int64) {
		qe := &QueryError{Code: code, Retryable: code.Retryable(), Message: "scripted", RetryAfterMS: retryAfterMS}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code.HTTPStatus())
		json.NewEncoder(w).Encode(StreamEvent{Type: EventError, Error: qe})
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		switch n {
		case 1:
			fail(w, CodeQueueFull, 1)
		case 2:
			fail(w, CodeOverloaded, 1)
		default:
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(StreamEvent{Type: EventResult,
				Result: &QueryResult{Patterns: []string{"triangle"}, Counts: []uint64{7}, Cache: "miss"}})
		}
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, Retries: 5, Backoff: time.Millisecond, BackoffCap: 5 * time.Millisecond}
	res, attempts, err := c.QueryAttempts(context.Background(), QueryRequest{Patterns: []string{"triangle"}})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || res.Counts[0] != 7 {
		t.Fatalf("attempts=%d counts=%v, want 3 attempts reaching the scripted answer", attempts, res.Counts)
	}

	// A fatal rejection must not be retried.
	var fatalCalls int
	tsFatal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fatalCalls++
		mu.Unlock()
		fail(w, CodeOverBudget, 0)
	}))
	defer tsFatal.Close()
	cf := &Client{Base: tsFatal.URL, Retries: 5, Backoff: time.Millisecond}
	_, attempts, err = cf.QueryAttempts(context.Background(), QueryRequest{Patterns: []string{"triangle"}})
	qe, ok := AsQueryError(err)
	if !ok || qe.Code != CodeOverBudget {
		t.Fatalf("got %v, want the rehydrated over_budget", err)
	}
	if attempts != 1 {
		t.Fatalf("fatal error used %d attempts, want 1", attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	if fatalCalls != 1 {
		t.Fatalf("server saw %d calls for a fatal rejection", fatalCalls)
	}
}

// TestIsRetryable pins the taxonomy the CLI help text documents.
func TestIsRetryable(t *testing.T) {
	for code, want := range map[Code]bool{
		CodeQueueFull: true, CodeQuotaExhausted: true, CodeOverloaded: true, CodeDraining: true,
		CodeBadRequest: false, CodeOverBudget: false, CodeDeadline: false,
		CodeCanceled: false, CodePanic: false, CodeInternal: false,
	} {
		if got := IsRetryable(errf(code, "x")); got != want {
			t.Errorf("IsRetryable(%s) = %v, want %v", code, got, want)
		}
	}
	if IsRetryable(context.DeadlineExceeded) || IsRetryable(context.Canceled) {
		t.Error("caller context expiry must never be retried")
	}
	if !IsRetryable(transportError{fmt.Errorf("connection refused")}) {
		t.Error("transport failures must be retryable")
	}
}

// TestRejectionOverWire: a pre-admission rejection travels as a real
// HTTP status with a Retry-After header, and the client rehydrates the
// typed error.
func TestRejectionOverWire(t *testing.T) {
	s := newTestServer(t, Config{AdmissionBudget: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{Patterns: []string{"triangle"}})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 for over_budget", resp.StatusCode)
	}

	c := &Client{Base: ts.URL}
	_, err = c.Query(context.Background(), QueryRequest{Patterns: []string{"triangle"}})
	qe, ok := AsQueryError(err)
	if !ok || qe.Code != CodeOverBudget || qe.Retryable {
		t.Fatalf("client rehydrated %v", err)
	}
}
