// Package server lifts the morphing library into a resident query
// service: an HTTP daemon (cmd/morphd) that accepts pattern-mining
// queries, schedules them over core.Runner, and streams run reports
// back — with robustness as the first-class design axis. The pipeline
// is
//
//	admission → bounded queue → worker pool (core.Runner) → stream
//
// guarded by cost-model-driven admission control, per-client fairness
// quotas, a result cache with single-flight de-duplication, per-query
// deadlines, panic isolation, and graceful drain. See DESIGN.md §13.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"morphing/internal/report"
)

// Code is a typed query-error class. The taxonomy splits along one axis
// that clients act on: retryable errors are capacity conditions that
// clear on their own (back off and resend the identical query), fatal
// errors will fail the same way every time (fix the query or give up).
type Code string

const (
	// CodeBadRequest — the request cannot be parsed or names unknown
	// patterns/engines/apps. Fatal.
	CodeBadRequest Code = "bad_request"
	// CodeOverBudget — the cost model's match-volume estimate for this
	// query alone exceeds the server's total admission budget: no amount
	// of retrying makes it fit. Fatal.
	CodeOverBudget Code = "over_budget"
	// CodeOverloaded — the query would fit an idle server, but the
	// in-flight queries' combined estimated match volume leaves no room
	// right now. Retryable: capacity frees as queries finish.
	CodeOverloaded Code = "overloaded"
	// CodeQueueFull — the bounded query queue is at capacity
	// (backpressure). Retryable with a retry-after hint.
	CodeQueueFull Code = "queue_full"
	// CodeQuotaExhausted — this client token is at its per-client
	// in-flight quota (fairness). Retryable once one of the client's own
	// queries finishes.
	CodeQuotaExhausted Code = "quota_exhausted"
	// CodeDraining — the server is shutting down and admits nothing new.
	// Retryable (against a replacement instance).
	CodeDraining Code = "draining"
	// CodeDeadline — the query's deadline expired (while queued or
	// mid-mining). Fatal for this deadline; partial counts are attached
	// when mining had started.
	CodeDeadline Code = "deadline"
	// CodeCanceled — the query's context was canceled (client
	// disconnect, or drain-deadline cancellation). Fatal; partial counts
	// attached when available.
	CodeCanceled Code = "canceled"
	// CodePanic — the query tripped a contained panic
	// (engine.PanicError). The query fails alone; the server keeps
	// serving. Fatal (the same query would panic again).
	CodePanic Code = "panic"
	// CodeInternal — any other execution error. Fatal.
	CodeInternal Code = "internal"
)

// Retryable reports whether the class is a transient capacity condition.
func (c Code) Retryable() bool {
	switch c {
	case CodeOverloaded, CodeQueueFull, CodeQuotaExhausted, CodeDraining:
		return true
	}
	return false
}

// HTTPStatus maps the class to the status of a pre-admission rejection.
// (Post-admission failures arrive as the terminal event of a 200 stream;
// the status is advisory there.)
func (c Code) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeOverBudget:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull, CodeQuotaExhausted:
		return http.StatusTooManyRequests
	case CodeOverloaded, CodeDraining:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// QueryError is the typed error every failed query returns, on both
// sides of the wire: the server builds it, the envelope carries it, the
// client rehydrates it (errors.As-able) and retries only when Retryable.
type QueryError struct {
	Code       Code          `json:"code"`
	Message    string        `json:"message"`
	Retryable  bool          `json:"retryable"`
	RetryAfter time.Duration `json:"-"`
	// RetryAfterMS is RetryAfter on the wire.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// Phase is the pipeline stage an interrupted query stopped in, and
	// Partial its per-alternative mined progress — the same marked
	// partial counts morphcli prints for interrupted runs.
	Phase   string                 `json:"phase,omitempty"`
	Partial []report.PartialReport `json:"partial,omitempty"`
	// Report is the interrupted run's full report when one was produced
	// (run ID, query log, calibration — everything the success path
	// returns).
	Report *report.RunReport `json:"report,omitempty"`
}

func (e *QueryError) Error() string {
	kind := "fatal"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("server: %s (%s): %s", e.Code, kind, e.Message)
}

// AsQueryError unwraps err to its typed QueryError, if it carries one.
func AsQueryError(err error) (*QueryError, bool) {
	var qe *QueryError
	ok := errors.As(err, &qe)
	return qe, ok
}

// errf builds a QueryError with Retryable derived from the code.
func errf(code Code, format string, args ...any) *QueryError {
	return &QueryError{Code: code, Message: fmt.Sprintf(format, args...), Retryable: code.Retryable()}
}

// withRetryAfter stamps the retry-after hint in both representations.
func (e *QueryError) withRetryAfter(d time.Duration) *QueryError {
	e.RetryAfter = d
	e.RetryAfterMS = d.Milliseconds()
	return e
}

// normalize rebuilds the derived fields after decoding from the wire.
func (e *QueryError) normalize() {
	e.RetryAfter = time.Duration(e.RetryAfterMS) * time.Millisecond
}
