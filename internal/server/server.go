package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"morphing/internal/aggr"
	"morphing/internal/autozero"
	"morphing/internal/bigjoin"
	"morphing/internal/canon"
	"morphing/internal/core"
	"morphing/internal/engine"
	"morphing/internal/graph"
	"morphing/internal/graphpi"
	"morphing/internal/obs"
	"morphing/internal/pattern"
	"morphing/internal/peregrine"
	"morphing/internal/report"
)

// Server metric names, published into the observer's registry so /vars
// and /metrics expose the serving layer next to the engine counters.
const (
	MetricQueries     = "server_queries_total"
	MetricRejects     = "server_admission_rejects_total"
	MetricCacheHits   = "server_cache_hits_total"
	MetricCacheMisses = "server_cache_misses_total"
	MetricCoalesced   = "server_coalesced_total"
	MetricPanics      = "server_query_panics_total"
	MetricInterrupted = "server_query_interrupted_total"
	// MetricDrainCanceled counts queries force-canceled at the drain
	// deadline.
	MetricDrainCanceled = "server_drain_canceled_total"
	// MetricErrors counts queries whose terminal outcome spent
	// availability error budget (any failure except bad_request).
	MetricErrors = "server_query_errors_total"

	// Per-phase latency histograms (nanoseconds): where admitted
	// queries' wall time went. Every query observes total; admit/queue/
	// mine are observed for the phases it actually reached.
	MetricPhaseAdmitNS = "server_phase_admit_ns"
	MetricPhaseQueueNS = "server_phase_queue_ns"
	MetricPhaseMineNS  = "server_phase_mine_ns"
	MetricPhaseTotalNS = "server_phase_total_ns"

	GaugeQueueDepth = "server_queue_depth"
	GaugeInFlight   = "server_inflight"
	// GaugeBudgetInUse is the sum of in-flight queries' estimated match
	// bytes (the quantity admission control meters against
	// Config.AdmissionBudget).
	GaugeBudgetInUse = "server_admission_bytes_inflight"
	// GaugeDrainNS records how long the last (only) drain took.
	GaugeDrainNS = "server_drain_duration_ns"
)

// rejectMetric is the per-code reject counter name.
func rejectMetric(code Code) string { return "server_reject_" + string(code) + "_total" }

// Config tunes the server. The zero value is usable: Defaults fills
// every knob with a production-shaped default.
type Config struct {
	// Engine is the default matching engine name (peregrine, autozero,
	// graphpi, bigjoin); requests may override per query.
	Engine string
	// Threads is the per-query engine worker count (0 = GOMAXPROCS).
	Threads int
	// MaxInFlight is the worker-pool size: at most this many queries
	// mine concurrently.
	MaxInFlight int
	// MaxQueue bounds the admitted-but-not-started queue; a full queue
	// rejects with queue_full (backpressure) rather than buffering
	// without bound.
	MaxQueue int
	// PerClientInFlight caps one client token's admitted queries
	// (queued + executing): the fairness quota. Combined with
	// MaxInFlight it bounds the worker share any tenant can hold.
	// 0 = unlimited.
	PerClientInFlight int
	// AdmissionBudget caps the combined cost-model match-volume estimate
	// (bytes) of all admitted queries; 0 = unlimited. A query whose
	// estimate alone exceeds the budget is rejected fatally
	// (over_budget); one that merely doesn't fit *now* is rejected
	// retryably (overloaded).
	AdmissionBudget uint64
	// MemoryBudget is handed to each query's core.Runner (batched →
	// on-the-fly conversion degradation); 0 = unlimited.
	MemoryBudget uint64
	// DefaultDeadline applies when a request carries none; MaxDeadline
	// clamps what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DrainTimeout bounds graceful drain: queries still running that
	// long after drain starts are canceled (they return marked partial
	// results).
	DrainTimeout time.Duration
	// RetryAfter is the hint attached to retryable rejections.
	RetryAfter time.Duration
	// CacheSize bounds the result cache (entries). 0 means the default
	// (256); a negative value disables caching and single-flight
	// coalescing.
	CacheSize int
	// Obs is the observability sink (nil = obs.Default()).
	Obs *obs.Observer
	// Flight is the per-query flight-recorder policy (nil = default).
	// When the server runs a History sampler, anomaly dumps written
	// through this policy also embed the recent time series (the policy's
	// History field is filled in if unset).
	Flight *obs.FlightPolicy
	// SLO declares the serving objectives scored on /slo; zero fields
	// take the defaults documented on SLOConfig.
	SLO SLOConfig
	// SampleInterval is the History sampler period backing /timeseries:
	// 0 means one second, negative disables sampling.
	SampleInterval time.Duration
	// HistoryCapacity is the points retained per series (0 = 360).
	HistoryCapacity int
}

// Defaults fills zero fields with production-shaped values.
func (c Config) Defaults() Config {
	if c.Engine == "" {
		c.Engine = "peregrine"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// task is one admitted query travelling from admission through the
// queue to a worker and back to its handler.
type task struct {
	req      *QueryRequest
	patterns []*pattern.Pattern
	eng      engine.Engine
	app      string
	client   string

	key       cacheKey
	cacheable bool
	fl        *flight // the flight this task leads (nil when not cacheable)

	est        core.AdmissionEstimate
	quotaHeld  bool
	budgetHeld bool

	ctx    context.Context
	cancel context.CancelFunc

	// events carries progress events to the streaming handler; sends are
	// non-blocking (the buffer absorbs bursts, extra events are dropped)
	// so a departed client never wedges a worker.
	events chan StreamEvent
	// done is closed exactly once when result/qerr are set.
	done   chan struct{}
	result *QueryResult
	qerr   *QueryError

	// Phase timestamps for the SLO tracker: when the task entered the
	// queue and when a worker picked it up. Written under Server.mu
	// before t.done closes; read by Submit after <-t.done.
	enqueuedAt time.Time
	startedAt  time.Time
}

// Server is the resident query service. Construct with New, serve
// Handler(), stop with Drain.
type Server struct {
	cfg     Config
	o       *obs.Observer
	engines map[string]engine.Engine

	mu        sync.Mutex
	g         graph.Adjacency
	epoch     uint64
	draining  bool
	queue     chan *task
	queued    int
	executing int
	admitted  map[*task]struct{}
	clients   map[string]int
	budgetUse uint64
	cache     *resultCache

	workers sync.WaitGroup // worker goroutines
	tasks   sync.WaitGroup // admitted tasks not yet settled

	slo  *sloTracker  // rolling-window objective scoring (/slo)
	hist *obs.History // time-series sampler (/timeseries); nil when disabled

	drainOnce sync.Once
	drainErr  error

	// testExec replaces real query execution in tests (deterministic
	// blocking/fault scenarios). Never set in production.
	testExec func(t *task) (*QueryResult, *QueryError)
}

// New builds a server over g and starts its worker pool.
func New(g graph.Adjacency, cfg Config) (*Server, error) {
	cfg = cfg.Defaults()
	engines := map[string]engine.Engine{
		"peregrine": &peregrine.Engine{Threads: cfg.Threads},
		"autozero":  &autozero.Engine{Threads: cfg.Threads},
		"graphpi":   &graphpi.Engine{Threads: cfg.Threads},
		"bigjoin":   &bigjoin.Engine{Threads: cfg.Threads},
	}
	if _, ok := engines[cfg.Engine]; !ok {
		return nil, fmt.Errorf("server: unknown default engine %q", cfg.Engine)
	}
	s := &Server{
		cfg:      cfg,
		o:        obs.Or(cfg.Obs),
		engines:  engines,
		g:        g,
		epoch:    1,
		queue:    make(chan *task, cfg.MaxQueue),
		admitted: make(map[*task]struct{}),
		clients:  make(map[string]int),
		cache:    newResultCache(cfg.CacheSize),
	}
	s.slo = newSLOTracker(cfg.SLO)
	if cfg.SampleInterval >= 0 {
		s.hist = obs.NewHistory(s.o.Metrics, obs.HistoryConfig{
			Interval: cfg.SampleInterval, // 0 → History's 1s default
			Capacity: cfg.HistoryCapacity,
			Counters: []string{
				MetricQueries, MetricRejects, MetricErrors,
				MetricCacheHits, MetricCacheMisses, MetricCoalesced,
				MetricPanics, MetricInterrupted,
				engine.MetricMatches, engine.MetricSetOps,
				core.MetricRuns,
				core.MetricDecodeRows, core.MetricDecodeBlocks, core.MetricDecodeElems,
				core.MetricProbeHits, core.MetricProbeMisses,
			},
			Gauges: []string{
				GaugeQueueDepth, GaugeInFlight, GaugeBudgetInUse,
				core.GaugeMmapResident, core.GaugeMmapMapped,
			},
			Histograms: []string{
				MetricPhaseAdmitNS, MetricPhaseQueueNS,
				MetricPhaseMineNS, MetricPhaseTotalNS,
				engine.MetricMineDurationNS,
			},
		})
		s.hist.Start()
		// Anomaly dumps get the recent time series for free.
		if cfg.Flight != nil && cfg.Flight.History == nil {
			cfg.Flight.History = s.hist
		}
	}
	s.workers.Add(cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		go s.worker()
	}
	return s, nil
}

// History returns the server's time-series sampler (nil when sampling
// is disabled by a negative Config.SampleInterval).
func (s *Server) History() *obs.History { return s.hist }

// GraphEpoch returns the current graph epoch (part of every cache key).
func (s *Server) GraphEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetGraph swaps the served graph and bumps the epoch, invalidating
// every cached result (old epochs can never match again; entries age out
// of the LRU).
func (s *Server) SetGraph(g graph.Adjacency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g = g
	s.epoch++
}

// ResolvePattern parses a query pattern argument: a named pattern
// (optionally with a :v vertex-induced suffix) or codec text — the same
// grammar morphcli accepts.
func ResolvePattern(arg string) (*pattern.Pattern, error) {
	name, vertexInduced := strings.CutSuffix(arg, ":v")
	p, err := pattern.ByName(name)
	if err != nil {
		p, err = pattern.Parse(arg)
		if err != nil {
			return nil, fmt.Errorf("%q is neither a named pattern nor codec text", arg)
		}
		return p, nil
	}
	if vertexInduced {
		p = p.AsVertexInduced()
	}
	return p, nil
}

// prepare validates and resolves a request into a task (no admission
// yet). Returned errors are always *QueryError.
func (s *Server) prepare(req *QueryRequest, client string) (*task, *QueryError) {
	if err := req.Validate(); err != nil {
		return nil, errf(CodeBadRequest, "%v", err)
	}
	app := req.App
	if app == "" {
		app = "count"
	}
	engName := req.Engine
	if engName == "" {
		engName = s.cfg.Engine
	}
	eng, ok := s.engines[strings.ToLower(engName)]
	if !ok {
		return nil, errf(CodeBadRequest, "unknown engine %q (peregrine, autozero, graphpi, bigjoin)", engName)
	}
	if _, err := core.ParseTrieMode(req.Trie); err != nil {
		return nil, errf(CodeBadRequest, "%v", err)
	}
	ps := make([]*pattern.Pattern, len(req.Patterns))
	for i, arg := range req.Patterns {
		p, err := ResolvePattern(arg)
		if err != nil {
			return nil, errf(CodeBadRequest, "pattern %d: %v", i, err)
		}
		ps[i] = p
	}
	t := &task{
		req:      req,
		patterns: ps,
		eng:      eng,
		app:      app,
		client:   client,
		events:   make(chan StreamEvent, 4),
		done:     make(chan struct{}),
	}
	t.cacheable = s.cfg.CacheSize > 0 && !req.NoCache && !req.Explain
	t.key = cacheKey{
		patterns: patternSetID(ps),
		app:      app,
		engine:   strings.ToLower(engName),
		baseline: req.Baseline,
		explain:  req.Explain,
	}
	return t, nil
}

// admit runs the admission pipeline for a prepared task:
//
//	drain gate → cache lookup → single-flight attach → fairness quota →
//	cost-model budget → bounded queue
//
// On success the task is either enqueued (t owns an execution slot) or
// attached to an identical in-flight execution (t.fl set, joined=true).
// Every rejection is typed; retryable ones carry a retry-after hint.
func (s *Server) admit(t *task) (joined *flight, hit *QueryResult, qerr *QueryError) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, s.reject(errf(CodeDraining, "server is draining").withRetryAfter(s.cfg.RetryAfter))
	}
	t.key.epoch = s.epoch
	if t.cacheable {
		if res, ok := s.cache.get(t.key); ok {
			// alignResult is pure, so it is safe (and necessary) to run
			// it before releasing s.mu: on alignment failure we fall
			// through to the flight table and quota checks, which assume
			// the lock is still held.
			if aligned, ok := alignResult(res, t.patterns); ok {
				s.mu.Unlock()
				s.o.Counter(MetricCacheHits).Inc(0)
				return nil, aligned, nil
			}
			// Alignment failure means the cached entry doesn't actually
			// cover this spelling of the set; fall through as a miss.
		}
		if fl, ok := s.cache.flights[t.key]; ok {
			s.mu.Unlock()
			s.o.Counter(MetricCoalesced).Inc(0)
			return fl, nil, nil
		}
	}
	// Fairness quota: admitted (queued + executing) per client token.
	if q := s.cfg.PerClientInFlight; q > 0 && s.clients[t.client] >= q {
		s.mu.Unlock()
		return nil, nil, s.reject(errf(CodeQuotaExhausted,
			"client %q is at its in-flight quota (%d)", t.client, q).withRetryAfter(s.cfg.RetryAfter))
	}
	s.clients[t.client]++
	t.quotaHeld = true
	if t.cacheable {
		t.fl = &flight{done: make(chan struct{})}
		s.cache.flights[t.key] = t.fl
	}
	g := s.g
	s.mu.Unlock()

	// Cost-model admission, outside the lock: transformation only.
	if budget := s.cfg.AdmissionBudget; budget > 0 {
		est, err := s.estimator(t).EstimateAdmission(t.ctx, g, t.patterns, aggFor(t.app))
		if err != nil {
			var qe *QueryError
			if engine.Interrupted(err) {
				qe = errf(CodeDeadline, "deadline expired during admission: %v", err)
			} else {
				qe = errf(CodeBadRequest, "query rejected at transform: %v", err)
			}
			s.release(t, qe)
			return nil, nil, s.reject(qe)
		}
		t.est = est
		if est.MatchBytes > budget {
			qe := errf(CodeOverBudget,
				"estimated match volume %d bytes exceeds the admission budget %d: this query can never be admitted here",
				est.MatchBytes, budget)
			s.release(t, qe)
			return nil, nil, s.reject(qe)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		qe := errf(CodeDraining, "server is draining").withRetryAfter(s.cfg.RetryAfter)
		s.release(t, qe)
		return nil, nil, s.reject(qe)
	}
	if budget := s.cfg.AdmissionBudget; budget > 0 {
		if s.budgetUse+t.est.MatchBytes > budget {
			use := s.budgetUse
			s.mu.Unlock()
			qe := errf(CodeOverloaded,
				"estimated match volume %d bytes does not fit the admission budget (%d of %d in use)",
				t.est.MatchBytes, use, budget).withRetryAfter(s.cfg.RetryAfter)
			s.release(t, qe)
			return nil, nil, s.reject(qe)
		}
		s.budgetUse += t.est.MatchBytes
		t.budgetHeld = true
		s.o.Gauge(GaugeBudgetInUse).Set(float64(s.budgetUse))
	}
	select {
	case s.queue <- t:
		t.enqueuedAt = time.Now()
	default:
		s.mu.Unlock()
		qe := errf(CodeQueueFull,
			"query queue is full (%d deep)", s.cfg.MaxQueue).withRetryAfter(s.cfg.RetryAfter)
		s.release(t, qe)
		return nil, nil, s.reject(qe)
	}
	s.queued++
	s.admitted[t] = struct{}{}
	s.tasks.Add(1)
	depth := s.queued
	s.o.Gauge(GaugeQueueDepth).Set(float64(depth))
	s.mu.Unlock()

	s.o.Counter(MetricQueries).Inc(0)
	t.notify(StreamEvent{Type: EventQueued, QueueDepth: depth, Position: depth})
	return nil, nil, nil
}

// reject counts a typed rejection and returns it.
func (s *Server) reject(qe *QueryError) *QueryError {
	s.o.Counter(MetricRejects).Inc(0)
	s.o.Counter(rejectMetric(qe.Code)).Inc(0)
	return qe
}

// release returns a task's admission holdings (quota, budget, flight)
// without settling the task itself; qerr, when non-nil, settles the
// task's flight so coalesced waiters fail with the same typed error.
func (s *Server) release(t *task, qerr *QueryError) {
	s.mu.Lock()
	if t.quotaHeld {
		t.quotaHeld = false
		if s.clients[t.client]--; s.clients[t.client] <= 0 {
			delete(s.clients, t.client)
		}
	}
	if t.budgetHeld {
		t.budgetHeld = false
		s.budgetUse -= t.est.MatchBytes
		s.o.Gauge(GaugeBudgetInUse).Set(float64(s.budgetUse))
	}
	if t.fl != nil {
		if s.cache.flights[t.key] == t.fl {
			delete(s.cache.flights, t.key)
		}
		fl := t.fl
		t.fl = nil
		fl.err = qerr
		if fl.err == nil {
			fl.err = errf(CodeInternal, "execution abandoned")
		}
		close(fl.done)
	}
	s.mu.Unlock()
}

// estimator builds the transform-only runner used for admission.
func (s *Server) estimator(t *task) *core.Runner {
	return &core.Runner{Engine: t.eng, DisableMorphing: t.req.Baseline, Obs: s.o}
}

func aggFor(app string) aggr.Aggregation {
	if app == "mni" {
		return aggr.MNI{}
	}
	return aggr.Count{}
}

// notify sends a progress event without ever blocking: a slow or
// departed client drops events rather than wedging the worker.
func (t *task) notify(ev StreamEvent) {
	select {
	case t.events <- ev:
	default:
	}
}

// worker executes queued tasks until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.queue {
		s.mu.Lock()
		t.startedAt = time.Now()
		s.queued--
		s.executing++
		s.o.Gauge(GaugeQueueDepth).Set(float64(s.queued))
		s.o.Gauge(GaugeInFlight).Set(float64(s.executing))
		s.mu.Unlock()

		var res *QueryResult
		var qerr *QueryError
		if err := t.ctx.Err(); err != nil {
			// The deadline expired (or the client left) while queued:
			// never start mining a dead query.
			qerr = classifyCtxErr(err, "while queued")
		} else {
			t.notify(StreamEvent{Type: EventStarted})
			res, qerr = s.execute(t)
		}
		s.settle(t, res, qerr)

		s.mu.Lock()
		s.executing--
		s.o.Gauge(GaugeInFlight).Set(float64(s.executing))
		s.mu.Unlock()
	}
}

// classifyCtxErr turns a context error into a typed QueryError; during
// names the phase the query was in (e.g. "while queued") so error
// documents and logs say where the deadline actually landed.
func classifyCtxErr(err error, during string) *QueryError {
	if errors.Is(err, context.DeadlineExceeded) {
		return errf(CodeDeadline, "deadline expired %s", during)
	}
	return errf(CodeCanceled, "canceled %s", during)
}

// execute runs one admitted query through core.Runner. Any panic that
// escapes the engines' own per-worker containment (conversion, selection,
// aggregation code) is contained here, so a query failure of any shape
// leaves the worker pool intact.
func (s *Server) execute(t *task) (res *QueryResult, qerr *QueryError) {
	defer func() {
		if r := recover(); r != nil {
			s.o.Counter(MetricPanics).Inc(0)
			qerr = errf(CodePanic, "query panicked outside engine containment: %v", r)
		}
	}()
	if s.testExec != nil {
		return s.testExec(t)
	}

	trieMode, _ := core.ParseTrieMode(t.req.Trie)
	s.mu.Lock()
	g := s.g
	s.mu.Unlock()
	r := &core.Runner{
		Engine:          t.eng,
		DisableMorphing: t.req.Baseline,
		Explain:         t.req.Explain,
		RunOptions:      core.RunOptions{Trie: trieMode},
		MemoryBudget:    s.cfg.MemoryBudget,
		Label:           "serve/" + t.app,
		Obs:             s.o,
		Flight:          s.cfg.Flight,
	}
	res = &QueryResult{Cache: "miss"}
	for _, p := range t.patterns {
		res.Patterns = append(res.Patterns, p.String())
	}
	var st *core.RunStats
	var err error
	switch t.app {
	case "mni":
		var tables []*aggr.Table
		tables, st, err = r.MNITablesCtx(t.ctx, g, t.patterns)
		if err == nil {
			for _, tbl := range tables {
				res.Supports = append(res.Supports, tbl.Support())
			}
		}
	default:
		res.Counts, st, err = r.CountsCtx(t.ctx, g, t.patterns)
	}
	res.Report = report.FromRunStats(st)
	if err != nil {
		return nil, s.classifyRunErr(err, st)
	}
	return res, nil
}

// classifyRunErr maps a runner error to the typed taxonomy, attaching
// the phase, the marked partial counts and the full interrupted-run
// report when the runner produced them (the same partial contract the
// CLI prints).
func (s *Server) classifyRunErr(err error, st *core.RunStats) *QueryError {
	var qe *QueryError
	var pe *engine.PanicError
	switch {
	case errors.Is(err, engine.ErrDeadlineExceeded):
		s.o.Counter(MetricInterrupted).Inc(0)
		qe = errf(CodeDeadline, "%v", err)
	case errors.Is(err, engine.ErrCanceled):
		s.o.Counter(MetricInterrupted).Inc(0)
		qe = errf(CodeCanceled, "%v", err)
	case errors.As(err, &pe):
		s.o.Counter(MetricPanics).Inc(0)
		qe = errf(CodePanic, "%v", err)
	default:
		qe = errf(CodeInternal, "%v", err)
	}
	if st != nil {
		qe.Phase = st.Phase
		rep := report.FromRunStats(st)
		qe.Partial = rep.Partial
		qe.Report = rep
	}
	return qe
}

// settle publishes a finished task's outcome: releases its admission
// holdings, stores cacheable successes, wakes coalesced waiters, and
// closes t.done.
func (s *Server) settle(t *task, res *QueryResult, qerr *QueryError) {
	s.mu.Lock()
	if t.quotaHeld {
		t.quotaHeld = false
		if s.clients[t.client]--; s.clients[t.client] <= 0 {
			delete(s.clients, t.client)
		}
	}
	if t.budgetHeld {
		t.budgetHeld = false
		s.budgetUse -= t.est.MatchBytes
		s.o.Gauge(GaugeBudgetInUse).Set(float64(s.budgetUse))
	}
	if res != nil && qerr == nil && t.cacheable {
		s.cache.put(t.key, res)
		s.o.Counter(MetricCacheMisses).Inc(0)
	}
	if t.fl != nil {
		if s.cache.flights[t.key] == t.fl {
			delete(s.cache.flights, t.key)
		}
		t.fl.result = res
		t.fl.err = qerr
		close(t.fl.done)
		t.fl = nil
	}
	delete(s.admitted, t)
	s.mu.Unlock()

	t.result = res
	t.qerr = qerr
	close(t.done)
	t.cancel()
	s.tasks.Done()
}

// alignResult re-aligns a cached result's per-pattern answers to this
// request's pattern order (cache keys are order-invariant). Returns
// false when the cached entry cannot cover the request (forcing a miss).
func alignResult(cached *QueryResult, ps []*pattern.Pattern) (*QueryResult, bool) {
	byID := map[uint64][]int{}
	for i, s := range cached.Patterns {
		p, err := pattern.Parse(s)
		if err != nil {
			return nil, false
		}
		id := canon.ID(p)
		byID[id] = append(byID[id], i)
	}
	out := &QueryResult{Cache: "hit", Report: cached.Report}
	for _, p := range ps {
		id := canon.ID(p)
		idxs := byID[id]
		if len(idxs) == 0 {
			return nil, false
		}
		i := idxs[0]
		byID[id] = idxs[1:]
		out.Patterns = append(out.Patterns, p.String())
		if cached.Counts != nil {
			if i >= len(cached.Counts) {
				return nil, false
			}
			out.Counts = append(out.Counts, cached.Counts[i])
		}
		if cached.Supports != nil {
			if i >= len(cached.Supports) {
				return nil, false
			}
			out.Supports = append(out.Supports, cached.Supports[i])
		}
	}
	return out, true
}

// Submit runs the full admission + execution pipeline for one request
// and blocks until its terminal outcome. It is the transport-free core
// of the HTTP handler (and what in-process embedders call). events, when
// non-nil, receives progress notifications.
func (s *Server) Submit(ctx context.Context, req *QueryRequest, client string, events func(StreamEvent)) (*QueryResult, *QueryError) {
	t0 := time.Now()
	if client == "" {
		client = "anonymous"
	}
	t, qerr := s.prepare(req, client)
	if qerr != nil {
		qerr = s.reject(qerr)
		s.record(client, t0, nil, qerr)
		return nil, qerr
	}
	deadline := clampDeadline(time.Duration(req.DeadlineMS)*time.Millisecond,
		s.cfg.DefaultDeadline, s.cfg.MaxDeadline)
	t.ctx, t.cancel = context.WithTimeout(ctx, deadline)

	joined, hit, qerr := s.admit(t)
	if qerr != nil {
		t.cancel()
		s.record(client, t0, t, qerr)
		return nil, qerr
	}
	if hit != nil {
		t.cancel()
		s.record(client, t0, t, nil)
		return hit, nil
	}
	if joined != nil {
		// Single-flight passenger: ride the identical in-flight
		// execution; our own deadline still applies to the wait.
		defer t.cancel()
		select {
		case <-joined.done:
			if joined.err != nil {
				cp := *joined.err
				s.record(client, t0, t, &cp)
				return nil, &cp
			}
			if aligned, ok := alignResult(joined.result, t.patterns); ok {
				aligned.Cache = "coalesced"
				s.record(client, t0, t, nil)
				return aligned, nil
			}
			qe := errf(CodeInternal, "coalesced result does not cover the query set")
			s.record(client, t0, t, qe)
			return nil, qe
		case <-t.ctx.Done():
			qe := classifyCtxErr(t.ctx.Err(), "waiting on coalesced execution")
			s.record(client, t0, t, qe)
			return nil, qe
		}
	}
	// Forward progress events until the task settles; Submit returns
	// only after the forwarder has exited, so no events callback fires
	// once the caller has its terminal outcome (the HTTP handler's
	// ResponseWriter would otherwise race its own return).
	forwarded := make(chan struct{})
	if events != nil {
		go func() {
			defer close(forwarded)
			for {
				select {
				case ev := <-t.events:
					events(ev)
				case <-t.done:
					return
				}
			}
		}()
	} else {
		close(forwarded)
	}
	<-t.done
	<-forwarded
	s.record(client, t0, t, t.qerr)
	return t.result, t.qerr
}

// record scores one terminal query outcome for the SLO tracker and the
// per-phase latency histograms. Every query observes the total phase;
// admit/queue/mine observe only when the query actually reached them
// (t may be nil when rejected before a task existed, and t.enqueuedAt /
// t.startedAt stay zero for rejections, cache hits, and coalesced
// passengers). Failures spend error budget unless the client caused
// them (bad_request).
func (s *Server) record(client string, t0 time.Time, t *task, qerr *QueryError) {
	end := time.Now()
	var d [sloPhases]time.Duration
	var valid [sloPhases]bool
	d[sloTotal], valid[sloTotal] = end.Sub(t0), true
	if t != nil && !t.enqueuedAt.IsZero() {
		d[sloAdmit], valid[sloAdmit] = t.enqueuedAt.Sub(t0), true
		if !t.startedAt.IsZero() {
			d[sloQueue], valid[sloQueue] = t.startedAt.Sub(t.enqueuedAt), true
			d[sloMine], valid[sloMine] = end.Sub(t.startedAt), true
		} else {
			// Settled without a worker pickup (drain-canceled while
			// queued): the whole wait was queue time.
			d[sloQueue], valid[sloQueue] = end.Sub(t.enqueuedAt), true
		}
	}
	names := [sloPhases]string{MetricPhaseAdmitNS, MetricPhaseQueueNS, MetricPhaseMineNS, MetricPhaseTotalNS}
	for i := 0; i < sloPhases; i++ {
		if valid[i] {
			s.o.Histogram(names[i]).Observe(0, uint64(d[i]))
		}
	}
	failed := qerr != nil && qerr.Code != CodeBadRequest
	if failed {
		s.o.Counter(MetricErrors).Inc(0)
	}
	s.slo.observe(end, client, d, valid, failed)
}

// ---- HTTP surface ----

// Handler returns the server's HTTP mux:
//
//	POST /query    run a mining query (ndjson stream)
//	GET  /healthz  liveness + drain state + queue depth
//	GET  /vars, /metrics, /debug/pprof/...  (observability, from obs)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("GET /timeseries", s.handleTimeseries)
	om := obs.Handler(s.o.Metrics)
	mux.Handle("/vars", om)
	mux.Handle("/metrics", om)
	mux.Handle("/debug/pprof/", om)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := Health{
		Status:     "ok",
		QueueDepth: s.queued,
		InFlight:   s.executing,
		GraphEpoch: s.epoch,
		Vertices:   s.g.NumVertices(),
		Edges:      s.g.NumEdges(),
	}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(h)
}

// handleSLO serves the rolling-window objectives scorecard.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(s.slo.Status(time.Now()))
}

// handleTimeseries serves the History sampler's ring buffers. ?n=K
// limits each series to its newest K points.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if s.hist == nil {
		w.Write([]byte("{\"disabled\":true}\n"))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	json.NewEncoder(w).Encode(s.hist.Snapshot(limit))
}

// handleQuery is the streaming query endpoint. Pre-admission rejections
// carry real HTTP status codes (and a Retry-After header when
// retryable); admitted queries respond 200 with an ndjson StreamEvent
// stream whose last line is the result or typed error.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, s.reject(errf(CodeBadRequest, "bad JSON body: %v", err)))
		return
	}
	client := r.Header.Get(ClientTokenHeader)

	// emit serializes stream writes: the progress-forwarding goroutine
	// inside Submit and this handler's terminal write may race.
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var emitMu sync.Mutex
	streaming := false
	emit := func(ev StreamEvent) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if !streaming {
			streaming = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	res, qerr := s.Submit(r.Context(), &req, client, emit)
	if qerr != nil {
		emitMu.Lock()
		started := streaming
		emitMu.Unlock()
		if !started {
			writeError(w, qerr)
			return
		}
		emit(StreamEvent{Type: EventError, Error: qerr})
		return
	}
	emit(StreamEvent{Type: EventResult, Result: res})
}

// writeError writes a pre-stream rejection as a plain HTTP error.
func writeError(w http.ResponseWriter, qe *QueryError) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if qe.RetryAfter > 0 {
		secs := int(qe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(qe.Code.HTTPStatus())
	json.NewEncoder(w).Encode(StreamEvent{Type: EventError, Error: qe})
}

// ---- drain ----

// Drain gracefully shuts the server down: stop admitting (new queries
// get the retryable draining rejection), let queued and in-flight
// queries finish, and — when the configured DrainTimeout passes first —
// cancel the stragglers, which then return their typed errors with
// marked partial counts to their clients. Drain returns when every
// admitted query has settled and all workers have exited; it is
// idempotent (later calls return the first drain's result).
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { s.drainErr = s.drain(ctx) })
	return s.drainErr
}

func (s *Server) drain(ctx context.Context) error {
	t0 := time.Now()
	s.mu.Lock()
	s.draining = true
	close(s.queue) // admission holds s.mu before sending, so no racing send
	s.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		s.tasks.Wait()
		close(settled)
	}()

	timeout := time.NewTimer(s.cfg.DrainTimeout)
	defer timeout.Stop()
	canceled := 0
	select {
	case <-settled:
	case <-timeout.C:
		// Drain deadline: cancel every admitted query (queued ones
		// included — their workers observe the dead context before
		// starting). Engines cancel cooperatively at work-block
		// boundaries, so settlement follows promptly.
		s.mu.Lock()
		for t := range s.admitted {
			t.cancel()
			canceled++
		}
		s.mu.Unlock()
		s.o.Counter(MetricDrainCanceled).Add(0, uint64(canceled))
		select {
		case <-settled:
		case <-ctx.Done():
			return fmt.Errorf("server: drain aborted with queries still in flight: %w", ctx.Err())
		}
	case <-ctx.Done():
		return fmt.Errorf("server: drain aborted: %w", ctx.Err())
	}
	s.workers.Wait()
	if s.hist != nil {
		s.hist.SampleNow() // capture the final counter state in the series
		s.hist.Stop()
	}
	d := time.Since(t0)
	s.o.Gauge(GaugeDrainNS).Set(float64(d))
	return nil
}

// Draining reports whether drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
