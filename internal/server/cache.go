package server

import (
	"container/list"
	"hash/fnv"
	"sort"

	"morphing/internal/canon"
	"morphing/internal/pattern"
)

// cacheKey identifies a query's result independent of how it was
// phrased: the graph epoch (bumped when the served graph is swapped),
// a 64-bit digest of the canonical pattern IDs (internal/canon — two
// isomorphic spellings of the same query set share a key), the app, the
// engine, and the option bits that change the answer's shape.
type cacheKey struct {
	epoch    uint64
	patterns uint64
	app      string
	engine   string
	baseline bool
	explain  bool
}

// patternSetID digests the query set: canon.ID per pattern (structure +
// labels + induced flag, invariant under vertex renumbering), sorted so
// the digest is order-independent — counting queries return per-pattern
// answers, but the executed winner set is order-invariant, and results
// are re-aligned to request order by pattern identity on a hit.
func patternSetID(ps []*pattern.Pattern) uint64 {
	ids := make([]uint64, len(ps))
	for i, p := range ps {
		ids[i] = canon.ID(p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, id := range ids {
		for i := range buf {
			buf[i] = byte(id >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// flight is one in-progress execution that identical concurrent queries
// attach to (single-flight): when the leader finishes, every waiter gets
// the same result or error. done is closed exactly once by the leader.
type flight struct {
	done   chan struct{}
	result *QueryResult
	err    *QueryError
}

// resultCache is a bounded LRU of successful query results plus the
// single-flight table of in-progress executions. All methods are
// mutex-free for callers: locking lives in Server (the cache is touched
// only under Server.mu), keeping the admission path's lock story to one
// lock.
type resultCache struct {
	cap     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	flights map[cacheKey]*flight
}

type cacheEntry struct {
	key cacheKey
	res *QueryResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
		flights: make(map[cacheKey]*flight),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (*QueryResult, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a successful result, evicting the least-recently-used entry
// beyond capacity.
func (c *resultCache) put(key cacheKey, res *QueryResult) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.lru.Len() }
