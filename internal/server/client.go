package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// Client is the typed morphd client: it submits queries, reads the
// ndjson response stream, rehydrates typed QueryErrors, and retries —
// with capped exponential backoff plus jitter — only the retryable
// classes (queue_full, quota_exhausted, overloaded, draining) and
// transport-level failures. Fatal classes (bad_request, over_budget,
// deadline, canceled, panic, internal) surface immediately: retrying a
// query that will fail the same way only adds load.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:7421".
	Base string
	// Token is the client identity for fairness quotas
	// (X-Morph-Client); empty shares the anonymous bucket.
	Token string
	// HTTP is the transport (nil = http.DefaultClient). Leave its
	// Timeout zero: per-query deadlines travel via context so streamed
	// responses aren't cut off mid-read.
	HTTP *http.Client
	// Retries caps retry attempts after the first try (0 = no retries).
	Retries int
	// Backoff is the first retry delay; each retry doubles it up to
	// BackoffCap. Jitter (±50%) decorrelates synchronized clients. The
	// server's retry-after hint, when larger, wins.
	Backoff    time.Duration
	BackoffCap time.Duration
	// OnEvent observes stream progress events (queued, started) as they
	// arrive; nil ignores them.
	OnEvent func(StreamEvent)

	// rng overrides the jitter source in tests (nil = global rand).
	rng *rand.Rand
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) backoff() (first, cap time.Duration) {
	first = c.Backoff
	if first <= 0 {
		first = 100 * time.Millisecond
	}
	cap = c.BackoffCap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	return first, cap
}

// IsRetryable reports whether err is a transient condition worth
// resending the identical query for: a retryable QueryError or a
// transport failure (connection refused/reset — the server may be
// restarting or briefly unreachable).
func IsRetryable(err error) bool {
	var qe *QueryError
	if errors.As(err, &qe) {
		return qe.Retryable
	}
	// Context expiry is the caller's deadline, never retryable.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te transportError
	return errors.As(err, &te)
}

// transportError wraps connection-level failures so IsRetryable can tell
// them apart from protocol-level fatals.
type transportError struct{ err error }

func (e transportError) Error() string { return "server: transport: " + e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

// Query submits req and blocks until a terminal outcome, retrying
// retryable failures within ctx's deadline. The returned error is a
// *QueryError for typed failures (errors.As to inspect code, partial
// counts, and the interrupted run's report).
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	res, _, err := c.query(ctx, req)
	return res, err
}

// QueryAttempts is Query also reporting how many attempts were used.
func (c *Client) QueryAttempts(ctx context.Context, req QueryRequest) (*QueryResult, int, error) {
	return c.query(ctx, req)
}

func (c *Client) query(ctx context.Context, req QueryRequest) (*QueryResult, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, fmt.Errorf("server: encode request: %w", err)
	}
	first, capd := c.backoff()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, attempt, fmt.Errorf("%w (deadline while retrying: %v)", lastErr, err)
			}
			return nil, attempt, err
		}
		res, err := c.do(ctx, body)
		if err == nil {
			return res, attempt + 1, nil
		}
		lastErr = err
		if attempt >= c.Retries || !IsRetryable(err) {
			return nil, attempt + 1, err
		}
		d := first << uint(attempt)
		if d > capd || d <= 0 {
			d = capd
		}
		if d = c.jitter(d); d > capd {
			d = capd
		}
		var qe *QueryError
		if errors.As(err, &qe) && qe.RetryAfter > d {
			d = qe.RetryAfter
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, attempt + 1, fmt.Errorf("%w (deadline while backing off: %v)", lastErr, ctx.Err())
		}
	}
}

// jitter spreads d over [d/2, 3d/2) so synchronized clients decorrelate;
// the retry loop clamps the result to BackoffCap so the documented cap
// holds.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	var f float64
	if c.rng != nil {
		f = c.rng.Float64()
	} else {
		f = rand.Float64()
	}
	return d/2 + time.Duration(f*float64(d))
}

// do performs one attempt: POST the query, then read the stream to its
// terminal event (or decode the pre-admission rejection).
func (c *Client) do(ctx context.Context, body []byte) (*QueryResult, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.Token != "" {
		httpReq.Header.Set(ClientTokenHeader, c.Token)
	}
	resp, err := c.http().Do(httpReq)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, transportError{err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode != http.StatusOK {
		// Pre-admission rejection: one JSON error event, real status.
		var ev StreamEvent
		if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil || ev.Error == nil {
			return nil, transportError{fmt.Errorf("status %s with undecodable error body", resp.Status)}
		}
		ev.Error.normalize()
		return nil, ev.Error
	}

	// Admitted: ndjson stream; the last line is result or error.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, transportError{fmt.Errorf("bad stream line: %w", err)}
		}
		switch ev.Type {
		case EventResult:
			if ev.Result == nil {
				return nil, transportError{errors.New("result event without payload")}
			}
			return ev.Result, nil
		case EventError:
			if ev.Error == nil {
				return nil, transportError{errors.New("error event without payload")}
			}
			ev.Error.normalize()
			return nil, ev.Error
		default:
			if c.OnEvent != nil {
				c.OnEvent(ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, transportError{fmt.Errorf("stream truncated: %w", err)}
	}
	return nil, transportError{errors.New("stream ended without a terminal event")}
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(httpReq)
	if err != nil {
		return nil, transportError{err}
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, transportError{err}
	}
	return &h, nil
}
