package server

import (
	"fmt"
	"time"

	"morphing/internal/report"
)

// ClientTokenHeader identifies the tenant for fairness accounting. A
// missing header is the anonymous client (one shared quota bucket).
const ClientTokenHeader = "X-Morph-Client"

// QueryRequest is the JSON body of POST /query: the pattern codec, the
// app, and per-query options.
type QueryRequest struct {
	// Patterns are named patterns ("4-cycle:v") or codec text
	// ("n=4;e=0-1,1-2,2-3,3-0;v"), as accepted by morphcli.
	Patterns []string `json:"patterns"`
	// App selects the pipeline: "count" (default; per-query subgraph
	// counts) or "mni" (per-query MNI support, FSM-style).
	App string `json:"app,omitempty"`
	// Engine overrides the server's default matching engine
	// (peregrine, autozero, graphpi, bigjoin).
	Engine string `json:"engine,omitempty"`
	// Baseline disables morphing (the queries run as-is).
	Baseline bool `json:"baseline,omitempty"`
	// Trie is the multi-pattern trie routing mode: auto (default), on,
	// off.
	Trie string `json:"trie,omitempty"`
	// Explain enables per-pattern calibration (EXPLAIN ANALYZE
	// semantics; see core.Runner.Explain).
	Explain bool `json:"explain,omitempty"`
	// DeadlineMS caps the query's total time (queued + mining); 0 uses
	// the server default, and the server clamps to its maximum.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// NoCache bypasses the result cache and single-flight coalescing.
	NoCache bool `json:"no_cache,omitempty"`
}

// Validate applies the request-shape checks both sides agree on.
func (q *QueryRequest) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("patterns must be non-empty")
	}
	switch q.App {
	case "", "count", "mni":
	default:
		return fmt.Errorf("unknown app %q (want count or mni)", q.App)
	}
	if q.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be >= 0")
	}
	return nil
}

// QueryResult is a successful query's payload: the answers plus the full
// run report (RunStats, calibration, query log, run ID).
type QueryResult struct {
	// Patterns echoes the resolved query patterns in codec form, in
	// request order (counts/supports are index-aligned with it).
	Patterns []string `json:"patterns"`
	// Counts holds per-query subgraph counts (app=count).
	Counts []uint64 `json:"counts,omitempty"`
	// Supports holds per-query MNI supports (app=mni).
	Supports []int `json:"supports,omitempty"`
	// Cache reports how the result was produced: "miss" (executed),
	// "hit" (served from the result cache), or "coalesced" (rode an
	// identical in-flight query's execution, single-flight).
	Cache string `json:"cache"`
	// Report is the execution's run report (for hits and coalesced
	// results: the originating execution's report).
	Report *report.RunReport `json:"report,omitempty"`
}

// Stream event types: an admitted query's response body is an ndjson
// stream of StreamEvent lines, terminated by exactly one result or error
// event. Pre-admission rejections use plain HTTP status codes instead
// (see Code.HTTPStatus).
const (
	EventQueued  = "queued"
	EventStarted = "started"
	EventResult  = "result"
	EventError   = "error"
)

// StreamEvent is one line of the response stream.
type StreamEvent struct {
	Type string `json:"type"`
	// QueueDepth and Position report the queue state at admission
	// (queued events).
	QueueDepth int `json:"queue_depth,omitempty"`
	Position   int `json:"position,omitempty"`
	// Result carries the payload of a terminal result event.
	Result *QueryResult `json:"result,omitempty"`
	// Error carries the typed failure of a terminal error event.
	Error *QueryError `json:"error,omitempty"`
}

// Health is the GET /healthz payload.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
	GraphEpoch uint64 `json:"graph_epoch"`
	Vertices   int    `json:"graph_vertices"`
	Edges      uint64 `json:"graph_edges"`
}

// clampDeadline resolves a request deadline against server defaults.
func clampDeadline(req time.Duration, def, max time.Duration) time.Duration {
	d := req
	if d <= 0 {
		d = def
	}
	if max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}
