package morphing_test

import (
	"fmt"
	"log"

	"morphing"
)

// The diamond graph: a 4-cycle 0-1-2-3 plus the diagonal {0,2}.
func diamond() *morphing.Graph {
	g, err := morphing.NewGraph(4, [][2]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func ExampleCountSubgraphs() {
	g := diamond()
	eng, err := morphing.NewEngine("peregrine", 1)
	if err != nil {
		log.Fatal(err)
	}
	tri, _ := morphing.PatternByName("triangle")
	c4, _ := morphing.PatternByName("4-cycle")
	counts, _, err := morphing.CountSubgraphs(g,
		[]*morphing.Pattern{tri, c4.AsVertexInduced()}, eng, morphing.Options{Morph: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangles:", counts[0])
	fmt.Println("vertex-induced 4-cycles:", counts[1])
	// Output:
	// triangles: 2
	// vertex-induced 4-cycles: 0
}

func ExampleMorphingEquations() {
	c4, err := morphing.PatternByName("4-cycle")
	if err != nil {
		log.Fatal(err)
	}
	eqE, eqV, err := morphing.MorphingEquations(c4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eqE)
	fmt.Println(eqV)
	// Output:
	// [4-cycle]E = [4-cycle]V + [chordal-4-cycle]V + 3·[4-clique]
	// [4-cycle]V = [4-cycle]E - [chordal-4-cycle]V - 3·[4-clique]
}

func ExampleParsePattern() {
	p, err := morphing.ParsePattern("n=4;e=0-1,1-2,2-3,3-0;v")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.N(), "vertices,", p.EdgeCount(), "edges,", p.AntiEdgeCount(), "anti-edges")
	// Output:
	// 4 vertices, 4 edges, 2 anti-edges
}

func ExampleCountCliques() {
	g := diamond()
	eng, err := morphing.NewEngine("autozero", 1)
	if err != nil {
		log.Fatal(err)
	}
	for k := 2; k <= 4; k++ {
		c, _, err := morphing.CountCliques(g, k, eng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-cliques: %d\n", k, c)
	}
	// Output:
	// 2-cliques: 5
	// 3-cliques: 2
	// 4-cliques: 0
}
