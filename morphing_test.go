package morphing

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, err := GenerateDataset("MI", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine("peregrine", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CountMotifs(g, 3, eng, Options{Morph: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := CountMotifs(g, 3, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Counts {
		if res.Counts[i] != base.Counts[i] {
			t.Errorf("motif %v: morphed %d, baseline %d", res.Patterns[i], res.Counts[i], base.Counts[i])
		}
	}
}

func TestEngineConstruction(t *testing.T) {
	for _, name := range EngineNames() {
		eng, err := NewEngine(strings.ToUpper(name), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.EqualFold(eng.Name(), name) {
			t.Errorf("engine %q reports name %q", name, eng.Name())
		}
	}
	if _, err := NewEngine("sparkplug", 1); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestGraphHelpers(t *testing.T) {
	g, err := NewGraph(3, [][2]uint32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("round trip lost edges: %d", h.NumEdges())
	}
	parts, err := PartitionGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("partitioned into %d", len(parts))
	}
}

func TestPatternHelpers(t *testing.T) {
	p, err := ParsePattern("n=4;e=0-1,1-2,2-3,3-0;v")
	if err != nil {
		t.Fatal(err)
	}
	named, err := PatternByName("4-cycle")
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCount() != named.EdgeCount() {
		t.Fatal("parsed and named 4-cycle disagree")
	}
	motifs, err := MotifPatterns(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) != 6 {
		t.Fatalf("MotifPatterns(4) = %d", len(motifs))
	}
	if _, err := NewPattern(2, [][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetsListing(t *testing.T) {
	if len(Datasets()) != 5 {
		t.Fatalf("Datasets() = %d recipes", len(Datasets()))
	}
	if _, err := GenerateDataset("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFacadeEnumeration(t *testing.T) {
	g, err := GenerateDataset("OK", 0.0002)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine("peregrine", 2)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWeights(g, 0, 1, 11)
	res, err := EnumerateSubgraphs(g, eng, []*Pattern{tri}, w.WithinOneStd, nil, EnumOptions{Morph: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[0]+res.Filtered[0] == 0 {
		t.Fatal("no triangles on a social-style graph")
	}
}

func TestFacadeFSM(t *testing.T) {
	g, err := GenerateDataset("MI", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine("peregrine", 2)
	if err != nil {
		t.Fatal(err)
	}
	freq, _, err := MineFrequent(g, eng, FSMOptions{MaxEdges: 2, MinSupport: 3, Morph: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(freq) == 0 {
		t.Fatal("no frequent patterns at a low threshold")
	}
}

func TestFacadeCliquesAndEquations(t *testing.T) {
	g, err := GenerateDataset("MI", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine("peregrine", 2)
	if err != nil {
		t.Fatal(err)
	}
	census, err := CliqueCensus(g, 6, eng)
	if err != nil {
		t.Fatal(err)
	}
	if census[2] != uint64(g.NumEdges()) {
		t.Fatalf("2-clique count %d != edge count %d", census[2], g.NumEdges())
	}
	maxK, err := MaxCliqueSize(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if maxK <= 6 {
		if _, ok := census[maxK]; !ok {
			t.Fatalf("max clique %d missing from census %v", maxK, census)
		}
	}
	c4, err := PatternByName("4-cycle")
	if err != nil {
		t.Fatal(err)
	}
	eqE, eqV, err := MorphingEquations(c4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eqE, "3·[4-clique]") || !strings.Contains(eqV, " - 3·[4-clique]") {
		t.Fatalf("equations wrong: %q / %q", eqE, eqV)
	}
	sorted, remap := SortGraphByDegree(g)
	if sorted.NumEdges() != g.NumEdges() || len(remap) != g.NumVertices() {
		t.Fatal("degree sort changed the graph")
	}
}
