#!/usr/bin/env bash
# End-to-end serving drill: boot morphd with a fault armed, fire
# concurrent clients at it, panic one query, deadline another, SIGTERM
# the daemon mid-service, and assert the typed taxonomy plus a clean
# drain. CI runs this; it also works locally:
#
#   ./scripts/e2e_serving.sh [artifact-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

ART="${1:-artifacts/serving}"
mkdir -p "$ART"
ADDR="127.0.0.1:7421"
BASE="http://$ADDR"

echo "== build"
go build -o "$ART/morphd" ./cmd/morphd
go build -o "$ART/morphcli" ./cmd/morphcli

echo "== boot morphd (chaos: first query panics at match 1)"
# panic@1 trips on the very first delivered match, then never again
# (the ordinal is crossed once): query 1 gets the typed panic error and
# every later query proves the worker pool survived it.
MORPH_FAULT=panic@1:e2e-chaos-probe \
  "$ART/morphd" -graph MI -scale 0.005 -listen "$ADDR" \
  -inflight 2 -queue 8 -client-inflight 4 -threads 2 \
  -drain-timeout 5s -querylog "$ART/queries.jsonl" \
  -sample-interval 200ms -slo-window 10s \
  2> "$ART/morphd.stderr" &
DAEMON=$!
trap 'kill -9 $DAEMON 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" > "$ART/health.json" 2>/dev/null; then break; fi
  if ! kill -0 $DAEMON 2>/dev/null; then
    echo "morphd died during startup:" >&2; cat "$ART/morphd.stderr" >&2; exit 1
  fi
  sleep 0.1
done
grep -q '"status":"ok"' "$ART/health.json" || { echo "unhealthy: $(cat "$ART/health.json")" >&2; exit 1; }
grep -q "CHAOS MODE" "$ART/morphd.stderr" || { echo "fault injector not armed" >&2; exit 1; }

echo "== panic injection: the first query fails typed, the server survives"
if "$ART/morphcli" query -addr "$BASE" -retries 0 -json triangle > "$ART/panic.json" 2> "$ART/panic.stderr"; then
  echo "panic-armed query unexpectedly succeeded" >&2; exit 1
fi
grep -q '"code": *"panic"' "$ART/panic.json" || { echo "no typed panic error:" >&2; cat "$ART/panic.json" >&2; exit 1; }
grep -q '"retryable": *false' "$ART/panic.json" || { echo "panic marked retryable" >&2; exit 1; }

echo "== concurrent queries after the contained panic"
pids=()
for p in triangle 4-cycle:v 4-star p4 triangle 4-cycle:v; do
  "$ART/morphcli" query -addr "$BASE" -client "tenant-$p" -deadline 60s -retries 3 "$p" \
    >> "$ART/concurrent.out" 2>> "$ART/concurrent.err" &
  pids+=($!)
done
fail=0
for pid in "${pids[@]}"; do wait "$pid" || fail=1; done
[ "$fail" = 0 ] || { echo "concurrent queries failed:" >&2; cat "$ART/concurrent.err" >&2; exit 1; }
grep -q "cache: hit\|cache: coalesced" "$ART/concurrent.out" \
  || { echo "repeated identical queries never hit the cache" >&2; exit 1; }

echo "== cancel injection: a 1ms deadline dies typed, not hung"
if "$ART/morphcli" query -addr "$BASE" -retries 0 -deadline 1ms -json p8 > "$ART/deadline.json" 2>/dev/null; then
  echo "1ms-deadline query unexpectedly succeeded" >&2; exit 1
fi
grep -Eq '"code": *"(deadline|canceled)"' "$ART/deadline.json" \
  || { echo "no typed deadline error:" >&2; cat "$ART/deadline.json" >&2; exit 1; }

echo "== observability under chaos: /slo burns budget, /timeseries has data"
curl -sf "$BASE/slo" > "$ART/slo_chaos.json"
curl -sf "$BASE/timeseries" > "$ART/timeseries.json"
python3 - "$ART/slo_chaos.json" "$ART/timeseries.json" <<'PY'
import json, math, sys
slo = json.load(open(sys.argv[1]))
# The panic and deadline failures above landed inside the 10s window:
# the availability budget must be burning, and sanely so.
assert slo["total"] >= 3, f"slo saw {slo['total']} queries, want >= 3"
assert slo["errors"] >= 2, f"slo saw {slo['errors']} errors, want >= 2 (panic + deadline)"
burn = slo["burn_rate"]
assert math.isfinite(burn) and burn > 0, f"burn rate {burn} not positive during chaos"
assert slo["error_burn_rate"] > 0, "error budget not burning despite injected failures"
phases = slo["phases"]
for ph in ("admit", "queue", "mine", "total"):
    assert ph in phases, f"missing phase {ph}"
assert phases["total"]["count"] >= slo["total"] - slo["errors"], "total phase under-observed"
assert phases["mine"]["count"] >= 1, "no mine-phase observations"
ts = json.load(open(sys.argv[2]))
series = ts["series"]
assert series, "/timeseries served no series"
q = series.get("server_queries_total", [])
assert q, f"no query-counter series; keys: {sorted(series)[:8]}..."
assert q[-1]["v"] >= 3, f"query counter series ends at {q[-1]['v']}, want >= 3"
assert any(k.endswith(":rate") for k in series), "no derived rate series"
assert any(k.endswith(":p95") for k in series), "no windowed quantile series"
print(f"   burn {burn:.2f} ({slo['errors']}/{slo['total']} errors), {len(series)} series")
PY

echo "== morphcli top renders a frame against the live daemon"
"$ART/morphcli" top -addr "$BASE" -once > "$ART/top.txt"
grep -q "burn rate" "$ART/top.txt" || { echo "top frame missing burn rate:" >&2; cat "$ART/top.txt" >&2; exit 1; }
grep -q "qps" "$ART/top.txt" || { echo "top frame missing qps" >&2; exit 1; }
grep -q "mine" "$ART/top.txt" || { echo "top frame missing phase rows" >&2; exit 1; }

echo "== burn rate returns to ~0 once the window slides past the chaos"
sleep 11
"$ART/morphcli" query -addr "$BASE" -retries 2 -nocache triangle > /dev/null
"$ART/morphcli" query -addr "$BASE" -retries 2 -nocache 4-star > /dev/null
curl -sf "$BASE/slo" > "$ART/slo_recovered.json"
python3 - "$ART/slo_recovered.json" <<'PY'
import json, sys
slo = json.load(open(sys.argv[1]))
assert slo["total"] >= 2, f"recovery window saw {slo['total']} queries"
assert slo["errors"] == 0, f"stale errors in recovery window: {slo['errors']}"
assert slo["error_burn_rate"] == 0, f"error burn {slo['error_burn_rate']} after recovery, want 0"
print(f"   recovered: burn {slo['burn_rate']:.2f} over {slo['total']} fresh queries")
PY

echo "== SIGTERM mid-service: graceful drain"
# Park a long query on the daemon so drain has a live straggler, then
# immediately signal. The straggler must come back typed (finished or
# canceled with partials), never hung, and the daemon must exit 0.
"$ART/morphcli" query -addr "$BASE" -retries 0 -deadline 60s -json p8 \
  > "$ART/straggler.json" 2>/dev/null &
STRAGGLER=$!
sleep 0.3
kill -TERM $DAEMON
if wait $STRAGGLER; then
  echo "   straggler finished before the drain deadline"
else
  grep -Eq '"code": *"(canceled|deadline)"' "$ART/straggler.json" \
    || { echo "straggler died untyped:" >&2; cat "$ART/straggler.json" >&2; exit 1; }
  echo "   straggler canceled typed at the drain deadline"
fi
wait $DAEMON || { echo "morphd exited nonzero after SIGTERM" >&2; cat "$ART/morphd.stderr" >&2; exit 1; }
trap - EXIT
grep -q "drained in" "$ART/morphd.stderr" || { echo "no drain confirmation:" >&2; cat "$ART/morphd.stderr" >&2; exit 1; }

echo "== query log survived the drain"
python3 - "$ART/queries.jsonl" <<'PY'
import json, sys
events = [json.loads(l) for l in open(sys.argv[1])]
assert events, "query log is empty"
assert all(e.get("run") for e in events), "query log event without a run ID"
assert any(e["msg"] == "completed" for e in events), "no completed run in the log"
assert any(e["msg"] in ("failed", "interrupted") for e in events), "no interrupted run in the log"
labels = {e.get("label", "") for e in events}
assert any(l.startswith("serve/") for l in labels), f"no serve-scoped runs: {labels}"
print(f"   {len(events)} events, labels {sorted(labels)}")
PY

echo "PASS: serving e2e"
