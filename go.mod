module morphing

go 1.22
