// Benchmarks regenerating the paper's figures as testing.B targets, one
// per table/figure of the evaluation (Section 7) plus the Section 3
// profiling. Each benchmark runs a small-scale instance of the figure's
// workload; the CSV-producing drivers behind them live in internal/bench
// and cmd/morphbench. Custom metrics report the paper's headline ratios
// (speedup, set-op reduction, UDF reduction, branch reduction) so
// `go test -bench` output directly mirrors the figures.
package morphing

import (
	"fmt"
	"io"
	"testing"

	"morphing/internal/apps/fsm"
	"morphing/internal/apps/mc"
	"morphing/internal/apps/sc"
	"morphing/internal/apps/se"
	"morphing/internal/autozero"
	"morphing/internal/bench"
	"morphing/internal/bigjoin"
	"morphing/internal/canon"
	"morphing/internal/core"
	"morphing/internal/costmodel"
	"morphing/internal/dataset"
	"morphing/internal/engine"
	"morphing/internal/graph"
	"morphing/internal/graphpi"
	"morphing/internal/pattern"
	"morphing/internal/peregrine"
)

// benchGraph memoizes the benchmark data graphs.
var benchGraphs = map[string]*graph.Graph{}

func benchGraph(b *testing.B, name string, scale float64) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("%s@%v", name, scale)
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	r, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := r.Scaled(scale).Generate()
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

func reportSpeedup(b *testing.B, baseline, morphed float64, metric string) {
	if morphed > 0 {
		b.ReportMetric(baseline/morphed, metric)
	}
}

// BenchmarkFig12Peregrine regenerates Fig. 12a/12c: 4-motif counting on a
// MiCo-style graph, baseline vs morphed, on the Peregrine model.
func BenchmarkFig12Peregrine(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	benchMotifs(b, g, peregrine.New(0))
}

// BenchmarkFig12AutoZero regenerates Fig. 12b/12d on the AutoZero model
// (merged schedules).
func BenchmarkFig12AutoZero(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	benchMotifs(b, g, autozero.New(0))
}

func benchMotifs(b *testing.B, g *graph.Graph, eng engine.Engine) {
	var baseElems, morphElems uint64
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := mc.Count(g, 4, eng, false)
			if err != nil {
				b.Fatal(err)
			}
			baseElems = res.Stats.Mining.SetElems
		}
	})
	b.Run("morphed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := mc.Count(g, 4, eng, true)
			if err != nil {
				b.Fatal(err)
			}
			morphElems = res.Stats.Mining.SetElems
		}
		reportSpeedup(b, float64(baseElems), float64(morphElems), "setop-reduction")
	})
}

// BenchmarkFig13SC regenerates Fig. 13a/13b: counting the pV1+pV2 pair
// where superpatterns are NOT part of the query set.
func BenchmarkFig13SC(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	queries := []*pattern.Pattern{
		pattern.TailedTriangle().AsVertexInduced(),
		pattern.ChordalFourCycle().AsVertexInduced(),
	}
	eng := peregrine.New(0)
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sc.Count(g, queries, eng, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("morphed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sc.Count(g, queries, eng, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig13FSM regenerates Fig. 13c: 3-FSM on a labeled MiCo-style
// graph.
func BenchmarkFig13FSM(b *testing.B) {
	g := benchGraph(b, "MI", 0.002)
	minSup := g.NumVertices() / 25
	for _, mode := range []struct {
		name  string
		morph bool
	}{{"baseline", false}, {"morphed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := fsm.Mine(g, peregrine.New(0), fsm.Options{
					MaxEdges: 3, MinSupport: minSup, Morph: mode.morph,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14GraphPi regenerates Fig. 14a/14c: Filter-UDF baseline vs
// morphed vertex-induced counting on the GraphPi model.
func BenchmarkFig14GraphPi(b *testing.B) {
	benchFilterElimination(b, graphpi.New(0))
}

// BenchmarkFig14BigJoin regenerates Fig. 14b/14d on the BigJoin model.
func BenchmarkFig14BigJoin(b *testing.B) {
	benchFilterElimination(b, bigjoin.New(0))
}

type filterCapable interface {
	engine.Engine
	CountVertexInducedViaFilter(graph.Adjacency, *pattern.Pattern) (uint64, *engine.Stats, error)
}

func benchFilterElimination(b *testing.B, eng filterCapable) {
	g := benchGraph(b, "MI", 0.004)
	queries := []*pattern.Pattern{pattern.TailedTriangle().AsVertexInduced()}
	var baseBranches, morphBranches uint64
	b.Run("filter-udf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st, err := sc.CountBaselineWithFilter(g, queries, eng)
			if err != nil {
				b.Fatal(err)
			}
			baseBranches = st.Branches + st.SetElems
		}
	})
	b.Run("morphed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st, err := sc.Count(g, queries, eng, true)
			if err != nil {
				b.Fatal(err)
			}
			morphBranches = st.Mining.Branches + st.Mining.SetElems
		}
		reportSpeedup(b, float64(baseBranches), float64(morphBranches), "branch-reduction")
	})
}

// BenchmarkFig15OnTheFly regenerates Fig. 15a/15b: subgraph enumeration
// with on-the-fly conversion of vertex-induced alternative streams.
func BenchmarkFig15OnTheFly(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	queries := []*pattern.Pattern{pattern.FourCycle(), pattern.Path(4)}
	w := se.NewWeights(g, 0, 1, 1)
	eng := peregrine.New(0)
	var baseUDF, morphUDF uint64
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := se.Enumerate(g, eng, queries, w.WithinOneStd, nil, se.Options{})
			if err != nil {
				b.Fatal(err)
			}
			baseUDF = res.Stats.UDFCalls
		}
	})
	b.Run("morphed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := se.Enumerate(g, eng, queries, w.WithinOneStd, nil,
				se.Options{Morph: true, PerMatchCost: 50})
			if err != nil {
				b.Fatal(err)
			}
			morphUDF = res.Stats.UDFCalls
		}
		reportSpeedup(b, float64(baseUDF), float64(morphUDF), "udf-reduction")
	})
}

// BenchmarkFig15Large regenerates Fig. 15c: the 7-vertex pV9 pattern on a
// partition of a (degree-thinned; see internal/bench) Products-style
// graph.
func BenchmarkFig15Large(b *testing.B) {
	r, err := dataset.ByName("PR")
	if err != nil {
		b.Fatal(err)
	}
	r = r.Scaled(0.0008)
	r.AvgDegree, r.TriangleP = 8, 0.15
	g, err := r.Generate()
	if err != nil {
		b.Fatal(err)
	}
	parts, err := graph.Partition(g, g.NumVertices()/400+1)
	if err != nil {
		b.Fatal(err)
	}
	sub := parts[0]
	p9, err := pattern.ByName("p9")
	if err != nil {
		b.Fatal(err)
	}
	q := []*pattern.Pattern{p9.AsVertexInduced()}
	eng := peregrine.New(0)
	for _, mode := range []struct {
		name  string
		morph bool
	}{{"baseline", false}, {"morphed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sc.Count(sub, q, eng, mode.morph); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15CostModel regenerates Fig. 15e at benchmark scale: the
// time spread across sampled alternative assignments for 4-motif
// counting, with the cost model's selection as the reference point.
func BenchmarkFig15CostModel(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	bases, err := canon.AllConnectedPatterns(4)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*pattern.Pattern, len(bases))
	for i, p := range bases {
		queries[i] = p.AsVertexInduced()
	}
	d, err := core.BuildSDAG(queries)
	if err != nil {
		b.Fatal(err)
	}
	assignments := core.EnumerateAssignments(d, 4, 1)
	eng := autozero.New(0)
	for ai, a := range assignments {
		ps := make([]*pattern.Pattern, len(a.Choices))
		for i, c := range a.Choices {
			ps[i] = c.Pattern
		}
		name := "sampled"
		switch ai {
		case 0:
			name = "query-set"
		case 1:
			name = "all-edge-induced"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.CountAll(g, ps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Profiles regenerates the Fig. 4 motivation rows (instrumented
// breakdowns) through the bench drivers.
func BenchmarkFig4Profiles(b *testing.B) {
	cfg := bench.Config{Scale: 0.0012, Threads: 0, Seed: 1, Quick: true}
	for _, id := range []string{"4c", "4d"} {
		e, err := bench.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("fig"+id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(cfg, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransformOverhead measures the §7 claim that pattern
// transformation is negligible: S-DAG build plus Algorithm 1 for the
// 21-pattern 5-motif query set.
func BenchmarkTransformOverhead(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	bases, err := canon.AllConnectedPatterns(5)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*pattern.Pattern, len(bases))
	for i, p := range bases {
		queries[i] = p.AsVertexInduced()
	}
	model := costmodel.NewDefault(graph.Summarize(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.BuildSDAG(queries)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Select(d, queries, core.DefaultCostFunc(model, 0), core.PolicyAny, core.SelectOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngines compares raw engine throughput on one pattern — the
// system-level differences of observation 4 made visible.
func BenchmarkEngines(b *testing.B) {
	g := benchGraph(b, "MI", 0.004)
	p := pattern.ChordalFourCycle()
	for _, eng := range []engine.Engine{
		peregrine.New(0), autozero.New(0), graphpi.New(0), bigjoin.New(0),
	} {
		b.Run(eng.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Count(g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
